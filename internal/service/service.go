// Package service is the concurrent sketch-serving layer: it fronts
// core.Plan for many simultaneous callers, holding plans hot across
// requests the way the one-shot Sketch surface cannot.
//
// The on-the-fly regeneration that defines this codebase is what makes the
// layer cheap: a cached plan stores no materialised S — only the blocked
// structure, samplers and scratch — so keeping tens of plans resident costs
// little more than the input matrices themselves, and every cache hit runs
// at Plan.Execute's allocation-free steady state.
//
// Three mechanisms compose (DESIGN.md §6):
//
//   - Plan cache. Requests are keyed by the CSC structural fingerprint
//     (sparse.Fingerprint: shape, nnz, chained hash of ColPtr/RowIdx/Val)
//     plus (d, Options). Misses build under single-flight — N concurrent
//     requests for a new key construct exactly one plan — and eviction is
//     LRU with reference counting: evicting a plan releases the cache's
//     reference while in-flight executes hold their own, so a plan is
//     never shut down mid-Execute.
//
//   - Admission gate. At most MaxInFlight requests run concurrently;
//     excess requests queue context-aware (a deadline or cancel unblocks
//     them), and beyond MaxQueue waiters the service sheds load with
//     ErrOverloaded instead of building an unbounded convoy.
//
//   - Observability. Hit/miss/build/eviction counters, live queue depth,
//     a log₂ latency histogram with quantiles, and the per-plan execute
//     metrics (steals, measured imbalance) aggregated per cache entry —
//     all in one Stats snapshot.
package service

import (
	"container/list"
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// Service-level errors. Argument and plan errors surface as the core typed
// errors (core.ErrNilMatrix, core.ErrInvalidSketchSize, ...); these two are
// the service's own.
var (
	// ErrClosed is returned for requests issued after Close.
	ErrClosed = errors.New("service: closed")
	// ErrOverloaded is returned when the admission queue is full
	// (backpressure: the caller should retry later or shed the request).
	ErrOverloaded = errors.New("service: admission queue full")
)

// Config sizes the service. The zero value selects sensible defaults.
type Config struct {
	// Capacity is the maximum number of cached plans (LRU-evicted beyond
	// it). 0 selects 16.
	Capacity int
	// MaxInFlight bounds concurrently executing requests. 0 selects
	// GOMAXPROCS. Note each Plan saturates its own worker pool, so values
	// far above the core count mostly add queueing inside the plans.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an admission slot; beyond it
	// requests fail fast with ErrOverloaded. 0 means unbounded queueing
	// (still context-aware). The bound is approximate under contention.
	MaxQueue int
	// RequestTimeout, when positive, imposes a per-request deadline on top
	// of the caller's context.
	RequestTimeout time.Duration
	// StoreBytes bounds the content-addressed matrix store behind the
	// by-reference surface (PutMatrix / SketchRefInto / PatchMatrix).
	// 0 selects store.DefaultMaxBytes; negative means unbounded.
	StoreBytes int64
	// SketchCacheBytes bounds the cache of computed sketches Â that backs
	// repeat by-reference requests and the incremental PATCH path. 0 selects
	// 64 MiB; negative means unbounded.
	SketchCacheBytes int64
	// PrecondCacheBytes bounds the cache of preconditioner factors behind
	// the solve surface. 0 selects 32 MiB; negative means unbounded.
	PrecondCacheBytes int64
	// Metrics is the observability registry the service registers its
	// counters and histograms on (sketchsp_service_* and the shared
	// sketchsp_plan_* families). nil creates a private registry,
	// retrievable with Registry(). Share one registry across the layers of
	// one serving stack (service + HTTP server), not across services — the
	// families would merge.
	Metrics *obs.Registry
}

// Service is the concurrent sketch server. Create with New, issue requests
// with Sketch / SketchInto / SketchBatch from any number of goroutines, and
// Close when done. All methods are safe for concurrent use.
type Service struct {
	cfg Config
	sem chan struct{} // admission slots

	// Counters, gauges and the latency histogram live in the obs registry
	// (metrics.go): Stats() and /metrics read the very same atomics, so the
	// two views cannot drift apart.
	reg *obs.Registry
	met *svcMetrics

	// Content-addressed surface (byref.go): uploaded matrices and the cache
	// of computed sketches that makes repeat by-ref requests and PATCH
	// deltas O(1) in nnz(A).
	store    *store.Store
	sketches *sketchCache
	refMet   *refMetrics

	// Solve surface (solve.go): preconditioner factor cache and the
	// sketchsp_solve_* metric family.
	preconds *precondCache
	solveMet *solveMetrics

	mu      sync.Mutex
	entries map[planKey]*entry
	lru     *list.List // of *entry; front = most recently used
	closed  bool
}

// New returns a ready Service.
func New(cfg Config) *Service {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		reg:      cfg.Metrics,
		met:      newSvcMetrics(cfg.Metrics),
		refMet:   newRefMetrics(cfg.Metrics),
		store:    store.New(store.Config{MaxBytes: cfg.StoreBytes, Metrics: cfg.Metrics}),
		sketches: newSketchCache(cfg.SketchCacheBytes, cfg.Metrics),
		preconds: newPrecondCache(cfg.PrecondCacheBytes, cfg.Metrics),
		solveMet: newSolveMetrics(cfg.Metrics),
		entries:  make(map[planKey]*entry),
		lru:      list.New(),
	}
	// Scrape-time gauge: the plan count already lives behind s.mu, so a
	// GaugeFunc beats a manually mirrored counter that could drift.
	s.reg.GaugeFunc("sketchsp_service_cached_plans",
		"Plans currently resident in the LRU cache.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.lru.Len())
		})
	return s
}

// Registry returns the obs registry holding the service's metrics — the
// HTTP layer mounts its /metrics endpoint on it and registers its own
// transport families alongside.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Sketch computes Â = S·A through the plan cache and returns it in a fresh
// d×n matrix. See SketchInto for the semantics.
func (s *Service) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	if a == nil {
		return nil, core.Stats{}, core.ErrNilMatrix
	}
	ahat := dense.NewMatrix(maxInt(d, 0), a.N)
	st, err := s.SketchInto(ctx, ahat, a, d, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return ahat, st, nil
}

// SketchInto computes Â = S·A into the caller's d×n matrix, overwriting it.
// The request is admitted through the backpressure gate, resolved against
// the plan cache (building the plan under single-flight on a miss), and
// executed with the caller's context propagated into the worker pool. On a
// cache hit the whole path — admission, fingerprint, lookup, execute —
// allocates nothing, which is what makes the service viable at high request
// rates (BenchmarkServiceHit pins this).
//
// The result is bit-identical to a fresh one-shot Sketch with the same
// (a, d, opts) — cached plans cannot change the sketch values — which the
// differential suite asserts across the configuration space.
//
// The service does not retain a beyond the call: a cached plan is built
// from its own deep copy of the matrix, so callers may reuse or mutate a's
// backing arrays as soon as SketchInto returns.
func (s *Service) SketchInto(ctx context.Context, ahat *dense.Matrix, a *sparse.CSC, d int, opts core.Options) (core.Stats, error) {
	start := time.Now()
	if a == nil {
		return core.Stats{}, core.ErrNilMatrix
	}
	if d <= 0 {
		return core.Stats{}, core.ErrInvalidSketchSize
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if err := s.admit(ctx); err != nil {
		return core.Stats{}, err
	}
	defer s.exit()

	p, e, err := s.plan(ctx, planKey{fp: a.Fingerprint(), d: d, opts: opts}, planSrc{a: a})
	if err != nil {
		return core.Stats{}, err
	}
	defer p.Release()
	st, err := p.ExecuteContext(ctx, ahat)
	if err != nil {
		if ctx.Err() != nil {
			s.met.cancels.Inc()
		}
		return core.Stats{}, err
	}
	e.record(st)
	s.met.latency.Observe(time.Since(start))
	return st, nil
}

// admit takes an admission slot, queueing context-aware when the service is
// at MaxInFlight and shedding load once MaxQueue requests already wait.
func (s *Service) admit(ctx context.Context) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	select {
	case s.sem <- struct{}{}: // free slot: no queueing
		s.met.inFlight.Inc()
		return nil
	default:
	}
	if max := s.cfg.MaxQueue; max > 0 && s.met.queueDepth.Value() >= int64(max) {
		s.met.rejections.Inc()
		return ErrOverloaded
	}
	s.met.queueDepth.Inc()
	defer s.met.queueDepth.Dec()
	// Only the contended path carries a queue-wait span: the histogram then
	// answers "how long do queued requests wait", not "how often is the
	// queue empty".
	sp := obs.StartSpan(s.met.queueWait)
	select {
	case s.sem <- struct{}{}:
		sp.End()
		s.met.inFlight.Inc()
		return nil
	case <-ctx.Done():
		sp.End()
		s.met.cancels.Inc()
		return ctx.Err()
	}
}

// exit returns the admission slot.
func (s *Service) exit() {
	s.met.inFlight.Dec()
	<-s.sem
}

// Close shuts the service down: subsequent requests fail with ErrClosed and
// every cached plan's reference is released. Requests already executing
// finish normally — their Retain-ed references keep the plans alive until
// the last one returns.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	es := make([]*entry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		es = append(es, el.Value.(*entry))
	}
	s.entries = make(map[planKey]*entry)
	s.lru.Init()
	s.mu.Unlock()
	for _, e := range es {
		e.close()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
