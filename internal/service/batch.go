package service

import (
	"context"
	"sync"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// Request is one sketch in a batch. Ahat, when non-nil, receives the result
// in place (it must be d×n); when nil a fresh matrix is allocated.
type Request struct {
	A    *sparse.CSC
	D    int
	Opts core.Options
	Ahat *dense.Matrix
}

// Response is the outcome of one batched Request, index-aligned with the
// input slice.
type Response struct {
	Ahat  *dense.Matrix
	Stats core.Stats
	Err   error
}

// SketchBatch serves many requests as one unit of work: requests are
// grouped by plan key, each distinct plan is resolved against the cache
// once, and a group's requests execute back-to-back on the hot plan —
// amortising fingerprint/lookup/refcount per group and maximising plan
// residency. Groups run concurrently, each through its own admission slot,
// so a batch cannot monopolise the service beyond its distinct-plan count.
//
// The per-request results are bit-identical to issuing the same calls
// individually; a failed group fails only its own requests.
func (s *Service) SketchBatch(ctx context.Context, reqs []Request) []Response {
	start := time.Now()
	out := make([]Response, len(reqs))

	// Group by plan key, preserving request order within a group.
	type group struct{ idxs []int }
	groups := make(map[planKey]*group)
	var order []planKey
	for i, r := range reqs {
		if r.A == nil {
			out[i].Err = core.ErrNilMatrix
			continue
		}
		if r.D <= 0 {
			out[i].Err = core.ErrInvalidSketchSize
			continue
		}
		k := planKey{fp: r.A.Fingerprint(), d: r.D, opts: r.Opts}
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.idxs = append(g.idxs, i)
	}

	var wg sync.WaitGroup
	for _, k := range order {
		g := groups[k]
		wg.Add(1)
		go func(k planKey, idxs []int) {
			defer wg.Done()
			fail := func(err error) {
				for _, i := range idxs {
					out[i].Err = err
				}
			}
			gctx := ctx
			if s.cfg.RequestTimeout > 0 {
				var cancel context.CancelFunc
				gctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
				defer cancel()
			}
			if err := s.admit(gctx); err != nil {
				fail(err)
				return
			}
			defer s.exit()
			p, e, err := s.plan(gctx, k, planSrc{a: reqs[idxs[0]].A})
			if err != nil {
				fail(err)
				return
			}
			defer p.Release()
			for _, i := range idxs {
				ahat := reqs[i].Ahat
				if ahat == nil {
					ahat = dense.NewMatrix(k.d, reqs[i].A.N)
				}
				st, err := p.ExecuteContext(gctx, ahat)
				if err != nil {
					if gctx.Err() != nil {
						s.met.cancels.Inc()
					}
					out[i].Err = err
					continue
				}
				e.record(st)
				s.met.latency.Observe(time.Since(start))
				out[i] = Response{Ahat: ahat, Stats: st}
			}
		}(k, g.idxs)
	}
	wg.Wait()
	return out
}
