package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// TestServiceHitZeroAlloc is the hard guard behind BenchmarkServiceHit: the
// whole cache-hit request path — admission, fingerprint, lookup, LRU touch,
// refcount, ExecuteContext, metric recording — must allocate nothing, or
// the service loses the allocation-free steady state PR 1 bought.
func TestServiceHitZeroAlloc(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 2})
	defer svc.Close()
	a := sparse.RandomUniform(3000, 200, 0.01, 1)
	d := 300
	opts := core.Options{Seed: 9, Workers: 2}
	out := dense.NewMatrix(d, a.N)
	ctx := context.Background()
	if _, err := svc.SketchInto(ctx, out, a, d, opts); err != nil { // build + warm pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := svc.SketchInto(ctx, out, a, d, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestServiceHitZeroAllocSJLT extends the zero-alloc gate to the
// sparse-kernel execute path: a cache-hit SJLT request must be as
// allocation-free as a dense one (the per-column position/value scratch is
// plan-owned, never per-request). Named so CI's -run
// 'TestServiceHitZeroAlloc' matches both gates.
func TestServiceHitZeroAllocSJLT(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 2})
	defer svc.Close()
	a := sparse.RandomUniform(3000, 200, 0.01, 1)
	d := 300
	opts := core.Options{Seed: 9, Workers: 2, Dist: rng.SJLT, Sparsity: 6}
	out := dense.NewMatrix(d, a.N)
	ctx := context.Background()
	if _, err := svc.SketchInto(ctx, out, a, d, opts); err != nil { // build + warm pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := svc.SketchInto(ctx, out, a, d, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SJLT cache-hit path allocates %.1f objects/op, want 0", allocs)
	}
	// A request with a different sparsity must key a different plan: two
	// entries resident, not a silent collision.
	opts2 := opts
	opts2.Sparsity = 3
	if _, err := svc.SketchInto(ctx, out, a, d, opts2); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().CachedPlans; got != 2 {
		t.Fatalf("sparsity change reused a plan: %d cached plans, want 2", got)
	}
}

// TestBuildErrorNotCached: a structurally invalid matrix fails the build
// with the typed core error, the failed entry is dropped (so the error is
// not cached forever), and the counters record it.
func TestBuildErrorNotCached(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 2})
	defer svc.Close()
	bad := &sparse.CSC{M: 3, N: 2, ColPtr: []int{0}} // truncated ColPtr
	ctx := context.Background()
	for i := 1; i <= 2; i++ {
		_, _, err := svc.Sketch(ctx, bad, 8, core.Options{})
		if !errors.Is(err, core.ErrInvalidMatrix) {
			t.Fatalf("attempt %d: err = %v, want ErrInvalidMatrix", i, err)
		}
		if got := svc.Stats().BuildErrors; got != int64(i) {
			t.Fatalf("attempt %d: BuildErrors = %d (error entry cached?)", i, got)
		}
	}
	if st := svc.Stats(); st.CachedPlans != 0 {
		t.Fatalf("failed build left %d entries resident", st.CachedPlans)
	}

	// Typed argument errors short-circuit before touching the cache.
	if _, _, err := svc.Sketch(ctx, nil, 8, core.Options{}); !errors.Is(err, core.ErrNilMatrix) {
		t.Fatalf("nil matrix: %v", err)
	}
	valid := sparse.RandomUniform(50, 10, 0.2, 1)
	if _, _, err := svc.Sketch(ctx, valid, 0, core.Options{}); !errors.Is(err, core.ErrInvalidSketchSize) {
		t.Fatalf("d=0: %v", err)
	}
}

// TestRequestTimeoutConfig: the service-level deadline applies even when
// the caller passes an undeadlined context.
func TestRequestTimeoutConfig(t *testing.T) {
	svc := New(Config{Capacity: 2, MaxInFlight: 1, RequestTimeout: 2 * time.Millisecond})
	defer svc.Close()
	big := sparse.RandomUniform(40000, 300, 0.01, 2)
	_, _, err := svc.Sketch(context.Background(), big, 450, core.Options{Seed: 1, Workers: 2, BlockD: 64})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the service deadline", err)
	}
}

// TestServiceStatsSnapshot sanity-checks the observability surface: latency
// quantiles are ordered and populated, per-entry aggregates see their
// executes, and plan stats ride along.
func TestServiceStatsSnapshot(t *testing.T) {
	svc := New(Config{Capacity: 4, MaxInFlight: 4})
	defer svc.Close()
	ctx := context.Background()
	a := sparse.PowerLaw(4000, 120, 24000, 1.6, 3)
	d := 180
	opts := core.Options{Seed: 7, Workers: 4}
	for i := 0; i < 5; i++ {
		if _, _, err := svc.Sketch(ctx, a, d, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Requests != 5 {
		t.Fatalf("Requests = %d, want 5", st.Requests)
	}
	if st.LatencyP50 <= 0 || st.LatencyP95 < st.LatencyP50 || st.LatencyP99 < st.LatencyP95 {
		t.Fatalf("latency quantiles disordered: p50=%v p95=%v p99=%v",
			st.LatencyP50, st.LatencyP95, st.LatencyP99)
	}
	if st.LatencyMax <= 0 || st.LatencyMean <= 0 {
		t.Fatalf("latency mean/max unpopulated: mean=%v max=%v", st.LatencyMean, st.LatencyMax)
	}
	if len(st.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(st.Entries))
	}
	e := st.Entries[0]
	if e.Executes != 5 || e.M != a.M || e.N != a.N || e.NNZ != a.NNZ() || e.D != d {
		t.Fatalf("entry aggregate wrong: %+v", e)
	}
	if e.Plan.Workers < 1 || e.Plan.Tasks < 1 {
		t.Fatalf("plan stats missing from entry: %+v", e.Plan)
	}
	if e.MeanImbalance < 1 || e.MaxImbalance < e.MeanImbalance {
		t.Fatalf("imbalance aggregates implausible: mean=%v max=%v",
			e.MeanImbalance, e.MaxImbalance)
	}
	if e.Busy <= 0 {
		t.Fatalf("entry busy time unpopulated")
	}
}
