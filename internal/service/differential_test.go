package service

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// The differential harness: for every sampled (shape, density,
// distribution, scheduler, workers, algorithm) configuration, the service —
// on both its miss path and its cache-hit path — must produce sketches
// bit-identical to a fresh one-shot Sketcher. This is the correctness
// contract that lets a serving layer cache plans at all: a cached plan is
// indistinguishable from planning anew.

// diffShape describes one matrix generator of the configuration space.
type diffShape struct {
	name string
	gen  func(density float64, seed int64) *sparse.CSC
}

// emptyEvenCols builds an m×n matrix whose even-indexed columns are empty —
// the empty-column degenerate the fingerprint fuzz target also covers.
func emptyEvenCols(m, n int, density float64, seed int64) *sparse.CSC {
	r := rand.New(rand.NewSource(seed))
	per := int(density * float64(m))
	if per < 1 {
		per = 1
	}
	coo := sparse.NewCOO(m, n, per*n/2)
	for j := 1; j < n; j += 2 {
		for k := 0; k < per; k++ {
			coo.Append(r.Intn(m), j, r.Float64()*2-1)
		}
	}
	return coo.ToCSC()
}

func diffShapes() []diffShape {
	return []diffShape{
		{"tall-500x80", func(dens float64, seed int64) *sparse.CSC {
			return sparse.RandomUniform(500, 80, dens, seed)
		}},
		{"tall-2000x40", func(dens float64, seed int64) *sparse.CSC {
			return sparse.RandomUniform(2000, 40, dens, seed)
		}},
		{"powerlaw-600x90", func(dens float64, seed int64) *sparse.CSC {
			nnz := int(dens * 600 * 90)
			if nnz < 10 {
				nnz = 10
			}
			return sparse.PowerLaw(600, 90, nnz, 1.5, seed)
		}},
		{"square-128x128", func(dens float64, seed int64) *sparse.CSC {
			return sparse.RandomUniform(128, 128, dens, seed)
		}},
		{"emptycols-300x64", func(dens float64, seed int64) *sparse.CSC {
			return emptyEvenCols(300, 64, dens, seed)
		}},
		{"degenerate-0xn", func(dens float64, seed int64) *sparse.CSC {
			return &sparse.CSC{M: 0, N: 33, ColPtr: make([]int, 34)}
		}},
		{"degenerate-mx0", func(dens float64, seed int64) *sparse.CSC {
			return &sparse.CSC{M: 77, N: 0, ColPtr: []int{0}}
		}},
		{"single-col", func(dens float64, seed int64) *sparse.CSC {
			return sparse.RandomUniform(400, 1, dens, seed)
		}},
		{"single-row", func(dens float64, seed int64) *sparse.CSC {
			return sparse.RandomUniform(1, 60, dens, seed)
		}},
	}
}

// assertBitIdentical fails unless got and want agree on every Float64 bit.
func assertBitIdentical(t *testing.T, label string, want, got *dense.Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for j := 0; j < want.Cols; j++ {
		wc, gc := want.Col(j), got.Col(j)
		for i := range wc {
			if math.Float64bits(wc[i]) != math.Float64bits(gc[i]) {
				t.Fatalf("%s: bit mismatch at (%d,%d): % x vs % x",
					label, i, j, wc[i], gc[i])
			}
		}
	}
}

// TestDifferentialServiceVsOneShot sweeps the configuration product —
// 9 shapes × 6 distributions × 3 schedulers with workers, algorithm,
// density and blocking cycling deterministically — for 162 sampled
// configurations (well past the 48-configuration acceptance floor). Each
// one asserts service ≡ one-shot on the miss path AND on the cache-hit
// path, while a deliberately small cache capacity keeps evictions flowing
// underneath.
func TestDifferentialServiceVsOneShot(t *testing.T) {
	shapes := diffShapes()
	dists := []rng.Distribution{rng.Uniform11, rng.Rademacher, rng.Gaussian, rng.ScaledInt, rng.SJLT, rng.CountSketch}
	scheds := []core.Scheduler{core.SchedWeighted, core.SchedNoSteal, core.SchedUniform}
	workerChoices := []int{1, 2, 4, 8}
	algChoices := []core.Algorithm{core.Alg3, core.Alg4, core.AlgAuto}
	densities := []float64{0.004, 0.02, 0.08}

	svc := New(Config{Capacity: 6, MaxInFlight: 4})
	defer svc.Close()
	ctx := context.Background()
	r := rand.New(rand.NewSource(20240806))

	configs := 0
	for si, sh := range shapes {
		for di, dist := range dists {
			for ci, sched := range scheds {
				workers := workerChoices[(si+di+ci)%len(workerChoices)]
				alg := algChoices[(si*2+di+ci)%len(algChoices)]
				dens := densities[(si+di*2+ci)%len(densities)]
				seed := uint64(1000 + si*100 + di*10 + ci)
				a := sh.gen(dens, int64(seed))
				d := 2*a.N/3 + 7 // always positive, exercises ragged block rows
				opts := core.Options{
					Algorithm: alg,
					Dist:      dist,
					Sched:     sched,
					Workers:   workers,
					Seed:      seed,
					// Small blocking on some configs forces multi-task
					// plans even at these test sizes.
					BlockD: []int{0, 13, 64}[r.Intn(3)],
					BlockN: []int{0, 9}[r.Intn(2)],
				}
				if dist == rng.SJLT {
					// Cycle explicit and default (⌈√d⌉) sparsity.
					opts.Sparsity = []int{0, 1, 5}[(si+di+ci)%3]
				}
				label := fmt.Sprintf("%s/%v/%v/w%d/%v/dens%g",
					sh.name, dist, sched, workers, alg, dens)

				// Reference: a fresh one-shot sketch.
				sk, err := core.NewSketcher(d, opts)
				if err != nil {
					t.Fatalf("%s: NewSketcher: %v", label, err)
				}
				want, _ := sk.Sketch(a)

				// Service, miss path.
				before := svc.Stats()
				got1, _, err := svc.Sketch(ctx, a, d, opts)
				if err != nil {
					t.Fatalf("%s: service miss path: %v", label, err)
				}
				assertBitIdentical(t, label+"/miss", want, got1)

				// Service, hit path (immediately after: guaranteed resident).
				got2 := dense.NewMatrix(d, a.N)
				if _, err := svc.SketchInto(ctx, got2, a, d, opts); err != nil {
					t.Fatalf("%s: service hit path: %v", label, err)
				}
				assertBitIdentical(t, label+"/hit", want, got2)
				after := svc.Stats()
				if after.Hits <= before.Hits {
					t.Fatalf("%s: second request did not hit the cache (hits %d → %d)",
						label, before.Hits, after.Hits)
				}
				configs++
			}
		}
	}
	if configs < 48 {
		t.Fatalf("differential suite sampled only %d configurations, want ≥ 48", configs)
	}
	st := svc.Stats()
	if st.Evictions == 0 {
		t.Fatalf("capacity %d saw no evictions over %d configs — eviction path untested",
			6, configs)
	}
	t.Logf("differential: %d configs, %d hits, %d misses, %d builds, %d evictions",
		configs, st.Hits, st.Misses, st.Builds, st.Evictions)
}

// TestDifferentialBatch asserts SketchBatch returns the same bits as
// issuing its requests individually, across mixed matrices, duplicate
// requests in one batch, and error entries, which must fail alone.
func TestDifferentialBatch(t *testing.T) {
	svc := New(Config{Capacity: 8, MaxInFlight: 4})
	defer svc.Close()
	a1 := sparse.RandomUniform(400, 50, 0.03, 11)
	a2 := sparse.PowerLaw(300, 40, 900, 1.3, 12)
	o1 := core.Options{Seed: 5, Workers: 2}
	o2 := core.Options{Seed: 6, Workers: 2, Algorithm: core.Alg4}

	reqs := []Request{
		{A: a1, D: 75, Opts: o1},
		{A: a2, D: 60, Opts: o2},
		{A: a1, D: 75, Opts: o1}, // duplicate: same group, same plan
		{A: nil, D: 10},          // fails alone
		{A: a1, D: 0, Opts: o1},  // fails alone
	}
	resps := svc.SketchBatch(context.Background(), reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i := 0; i < 3; i++ {
		if resps[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, resps[i].Err)
		}
	}
	if resps[3].Err == nil || resps[4].Err == nil {
		t.Fatal("invalid batch entries did not fail")
	}

	sk1, _ := core.NewSketcher(75, o1)
	want1, _ := sk1.Sketch(a1)
	sk2, _ := core.NewSketcher(60, o2)
	want2, _ := sk2.Sketch(a2)
	assertBitIdentical(t, "batch[0]", want1, resps[0].Ahat)
	assertBitIdentical(t, "batch[1]", want2, resps[1].Ahat)
	assertBitIdentical(t, "batch[2]", want1, resps[2].Ahat)
}
