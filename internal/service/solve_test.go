package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// solveProblem is one least-squares instance shared by the served and
// direct paths of the differential suite.
func solveProblem(seed int64, m, n int) (*sparse.CSC, []float64) {
	a := sparse.FixedRowNNZ(m, n, 6, seed)
	r := rand.New(rand.NewSource(seed + 1))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(x, b)
	for i := range b {
		b[i] += r.NormFloat64()
	}
	return a, b
}

func wideProblem(seed int64, m, n int) (*sparse.CSC, []float64) {
	at := sparse.FixedRowNNZ(n, m, 5, seed) // tall, then transpose to wide
	a := at.Transpose()
	r := rand.New(rand.NewSource(seed + 1))
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return a, b
}

func solveOpts() solver.Options {
	return solver.Options{Sketch: core.Options{Seed: 7, Dist: rng.Uniform11, Workers: 1}}
}

func sameBitsVec(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x",
				label, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

// TestSolveDifferentialVsDirect pins the SolveBackend contract: a served
// solve returns exactly the bits of a direct solver call for the same
// inputs, for every least-squares method — the plan cache and the
// preconditioner cache may change the cost, never the answer.
func TestSolveDifferentialVsDirect(t *testing.T) {
	ctx := context.Background()
	tall, btall := solveProblem(51, 400, 20)
	wide, bwide := wideProblem(53, 30, 200)
	cases := []struct {
		method solver.Method
		a      *sparse.CSC
		b      []float64
	}{
		{solver.MethodSAPQR, tall, btall},
		{solver.MethodSAPSVD, tall, btall},
		{solver.MethodLSQRD, tall, btall},
		{solver.MethodMinNorm, wide, bwide},
	}
	for _, tc := range cases {
		t.Run(tc.method.String(), func(t *testing.T) {
			want, _, err := solver.SolveContext(ctx, tc.method, tc.a, tc.b, solveOpts())
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			svc := New(Config{})
			defer svc.Close()
			res, err := svc.Solve(ctx, &SolveRequest{
				Method: tc.method, A: tc.a, B: tc.b, Opts: solveOpts(),
			})
			if err != nil {
				t.Fatalf("served: %v", err)
			}
			sameBitsVec(t, "served vs direct", want, res.X)
			if !res.Info.Converged {
				t.Errorf("served solve did not converge (%d iters)", res.Info.Iters)
			}
			if res.PrecondCached {
				t.Error("first solve reported a preconditioner cache hit")
			}
		})
	}
}

// TestSolveRandSVDDifferential: served factors are bit-identical to a
// direct RandSVD with the same options.
func TestSolveRandSVDDifferential(t *testing.T) {
	ctx := context.Background()
	a := sparse.FixedRowNNZ(300, 40, 6, 61)
	const rank, over, power = 8, 4, 1
	want, err := solver.RandSVD(a, rank, over, power, solveOpts().Sketch)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	svc := New(Config{})
	defer svc.Close()
	res, err := svc.Solve(ctx, &SolveRequest{
		Method: solver.MethodRandSVD, A: a, Opts: solveOpts(),
		Rank: rank, Oversample: over, PowerIters: power,
	})
	if err != nil {
		t.Fatalf("served: %v", err)
	}
	if res.Factors == nil {
		t.Fatal("RandSVD result carries no factors")
	}
	sameBits(t, "U", want.U, res.Factors.U)
	sameBits(t, "V", want.V, res.Factors.V)
	sameBitsVec(t, "Sigma", want.Sigma, res.Factors.Sigma)
}

// TestSolvePrecondCacheBitIdentity: a repeat SAP solve hits the factor
// cache — skipping the sketch and factorization — and still returns the
// exact bits of the cold solve (cached-precond replay is deterministic).
func TestSolvePrecondCacheBitIdentity(t *testing.T) {
	ctx := context.Background()
	a, b := solveProblem(71, 400, 20)
	for _, method := range []solver.Method{solver.MethodSAPQR, solver.MethodSAPSVD} {
		t.Run(method.String(), func(t *testing.T) {
			svc := New(Config{})
			defer svc.Close()
			req := &SolveRequest{Method: method, A: a, B: b, Opts: solveOpts()}
			cold, err := svc.Solve(ctx, req)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			warm, err := svc.Solve(ctx, req)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if cold.PrecondCached || !warm.PrecondCached {
				t.Fatalf("PrecondCached: cold=%v warm=%v; want false,true", cold.PrecondCached, warm.PrecondCached)
			}
			sameBitsVec(t, "warm vs cold", cold.X, warm.X)
			if h, m := svc.solveMet.precondHits.Value(), svc.solveMet.precondMisses.Value(); h != 1 || m != 1 {
				t.Errorf("precond counters hits=%d misses=%d, want 1,1", h, m)
			}
		})
	}
}

// TestSolveByRefDifferential: solving a stored matrix by fingerprint
// returns the bits of the inline solve, and the repeat lands on the
// preconditioner cached under the same fingerprint.
func TestSolveByRefDifferential(t *testing.T) {
	ctx := context.Background()
	a, b := solveProblem(81, 400, 20)
	svc := New(Config{})
	defer svc.Close()
	want, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR, A: a, B: b, Opts: solveOpts()})
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	if _, err := svc.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Solve(ctx, &SolveRequest{
		Method: solver.MethodSAPQR, ByRef: true, Fp: a.Fingerprint(), B: b, Opts: solveOpts(),
	})
	if err != nil {
		t.Fatalf("by-ref: %v", err)
	}
	sameBitsVec(t, "by-ref vs inline", want.X, res.X)
	// The inline solve already cached the preconditioner under a's
	// fingerprint; the by-ref solve must have found it.
	if !res.PrecondCached {
		t.Error("by-ref solve missed the preconditioner cached by the inline solve")
	}
}

// TestSolveByRefEvictedFingerprint pins the eviction half of the async-job
// race (satellite: DESIGN.md §13): a by-reference solve resolves its
// fingerprint at execution time, so a matrix evicted after the request was
// built — here by the store's byte budget — fails with store.ErrNotFound
// rather than solving against stale bytes.
func TestSolveByRefEvictedFingerprint(t *testing.T) {
	ctx := context.Background()
	a, b := solveProblem(91, 400, 20)
	other := sparse.FixedRowNNZ(400, 20, 6, 92)
	// Store budget fits one matrix, plan cache holds one plan: a resident
	// by-ref plan pins its matrix, so the plan must churn out first.
	budget := other.MemoryBytes() + a.MemoryBytes()/2
	svc := New(Config{StoreBytes: budget, Capacity: 1})
	defer svc.Close()
	if _, err := svc.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	req := &SolveRequest{Method: solver.MethodSAPQR, ByRef: true, Fp: a.Fingerprint(), B: b, Opts: solveOpts()}
	if _, err := svc.Solve(ctx, req); err != nil {
		t.Fatalf("resident solve: %v", err)
	}
	// Churn the plan cache so a's plan — and its pin on the stored
	// matrix — is released, then blow the store budget to evict a.
	if _, _, err := svc.Sketch(ctx, other, 8, solveOpts().Sketch); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PutMatrix(ctx, other); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !svc.Store().Contains(a.Fingerprint()) })
	_, err := svc.Solve(ctx, req)
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("solve of evicted fingerprint = %v, want store.ErrNotFound", err)
	}
}

// TestSolveProgressObserved: Opts.Progress sees LSQR's iterations on the
// serving path.
func TestSolveProgressObserved(t *testing.T) {
	ctx := context.Background()
	a, b := solveProblem(95, 400, 20)
	svc := New(Config{})
	defer svc.Close()
	var calls int
	lastIter := -1
	opts := solveOpts()
	opts.Progress = func(iter int, resid float64) {
		calls++
		if iter <= lastIter {
			t.Errorf("progress iterations not increasing: %d after %d", iter, lastIter)
		}
		lastIter = iter
	}
	res, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR, A: a, B: b, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress never called")
	}
	if lastIter > res.Info.Iters {
		t.Errorf("last progress iter %d exceeds Info.Iters %d", lastIter, res.Info.Iters)
	}
}

// TestSolveValidationAndClose: argument and lifecycle errors surface as
// the canonical sentinels.
func TestSolveValidationAndClose(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	if _, err := svc.Solve(ctx, nil); !errors.Is(err, core.ErrNilMatrix) {
		t.Errorf("Solve(nil) = %v, want ErrNilMatrix", err)
	}
	if _, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR}); !errors.Is(err, core.ErrNilMatrix) {
		t.Errorf("Solve(no matrix) = %v, want ErrNilMatrix", err)
	}
	a, b := solveProblem(97, 100, 10)
	if _, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodRandSVD, A: a, B: b, Opts: solveOpts()}); err == nil {
		t.Error("RandSVD with rank 0 did not fail")
	}
	svc.Close()
	if _, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR, A: a, B: b}); !errors.Is(err, ErrClosed) {
		t.Errorf("Solve after Close = %v, want ErrClosed", err)
	}
}

// TestSolveMetricsMove: the sketchsp_solve_* counters and gauges track the
// request stream.
func TestSolveMetricsMove(t *testing.T) {
	ctx := context.Background()
	a, b := solveProblem(99, 400, 20)
	svc := New(Config{})
	defer svc.Close()
	res, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR, A: a, B: b, Opts: solveOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.solveMet.requests.Value(); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := svc.solveMet.lastResidual.Value(); got != res.Residual {
		t.Errorf("lastResidual gauge = %v, want %v", got, res.Residual)
	}
	if got := svc.solveMet.iterations.Value(); got != int64(res.Info.Iters) {
		t.Errorf("iterations = %d, want %d", got, res.Info.Iters)
	}
	if _, err := svc.Solve(ctx, &SolveRequest{Method: solver.MethodSAPQR, ByRef: true, Fp: a.Fingerprint(), B: b}); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("unknown fingerprint = %v, want ErrNotFound", err)
	}
	if got := svc.solveMet.errors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

// contractionEstimate is a documented proxy; pin its algebra.
func TestContractionEstimate(t *testing.T) {
	cases := []struct {
		resid float64
		iters int
		want  float64
	}{
		{1e-12, 12, 0.1},
		{0.25, 2, 0.5},
		{0, 5, 0},
		{1e-3, 0, 0},
	}
	for _, c := range cases {
		got := contractionEstimate(c.resid, c.iters)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, c.want) {
			t.Errorf("contractionEstimate(%g, %d) = %g, want %g", c.resid, c.iters, got, c.want)
		}
	}
}
