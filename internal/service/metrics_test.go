package service

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
)

// TestStatsMetricsReconcile drives hits, misses, builds, a build error and
// LRU evictions through one service, then reads the same state through both
// observability surfaces — Stats() and the registry's text exposition — and
// requires them to agree exactly. There is no tolerance: both views read
// the same atomics, so any drift is a wiring bug (a counter incremented on
// one surface only), which is precisely the class of bug the shared
// registry was built to make impossible.
func TestStatsMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	svc := New(Config{Capacity: 2, MaxInFlight: 2, Metrics: reg})
	defer svc.Close()
	if svc.Registry() != reg {
		t.Fatal("service did not adopt the injected registry")
	}

	ctx := context.Background()
	ms := []*sparse.CSC{
		sparse.RandomUniform(200, 40, 0.05, 1),
		sparse.RandomUniform(150, 30, 0.08, 2),
		sparse.RandomUniform(100, 20, 0.1, 3), // third key: evicts at capacity 2
	}
	for round := 0; round < 2; round++ { // second round re-misses evicted keys
		for _, a := range ms {
			for rep := 0; rep < 2; rep++ { // back-to-back repeat: miss then hit
				if _, _, err := svc.Sketch(ctx, a, 16, core.Options{Seed: 5, Workers: 2}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	bad := &sparse.CSC{M: 3, N: 2, ColPtr: []int{0}} // truncated: build must fail
	if _, _, err := svc.Sketch(ctx, bad, 8, core.Options{}); !errors.Is(err, core.ErrInvalidMatrix) {
		t.Fatalf("bad matrix err = %v", err)
	}

	st := svc.Stats()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	mm, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]int64{
		"sketchsp_service_cache_hits_total":        st.Hits,
		"sketchsp_service_cache_misses_total":      st.Misses,
		"sketchsp_service_plan_builds_total":       st.Builds,
		"sketchsp_service_plan_build_errors_total": st.BuildErrors,
		"sketchsp_service_cache_evictions_total":   st.Evictions,
		"sketchsp_service_shed_total":              st.Rejections,
		"sketchsp_service_canceled_total":          st.Cancels,
		"sketchsp_service_in_flight":               st.InFlight,
		"sketchsp_service_queue_depth":             st.QueueDepth,
		"sketchsp_service_cached_plans":            int64(st.CachedPlans),
		"sketchsp_service_request_seconds_count":   st.Requests,
	}
	for key, want := range expect {
		got, ok := mm[key]
		if !ok {
			t.Errorf("exposition missing %q", key)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, Stats says %d", key, got, want)
		}
	}
	// And the traffic actually exercised every counter the test names:
	// three keys through a capacity-2 cache, each requested twice in a row,
	// over two rounds; the bad matrix is the 7th miss (it inserts — and
	// thereby evicts — before its build fails).
	if st.Misses != 7 || st.Builds != 6 || st.Hits != 6 || st.Evictions != 5 || st.BuildErrors != 1 {
		t.Errorf("traffic shape drifted: %+v", st)
	}
	if st.Requests != 12 {
		t.Errorf("Requests = %d, want 12 successes", st.Requests)
	}
}
