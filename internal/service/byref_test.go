package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// refConfigs is the configuration grid the by-ref suites sweep: the three
// sketch families the serving stack exposes by reference, each under both
// the blocked xoshiro source and the counter-based Philox source.
func refConfigs() []core.Options {
	var out []core.Options
	for _, src := range []rng.SourceKind{rng.SourceBatchXoshiro, rng.SourcePhilox} {
		out = append(out,
			core.Options{Dist: rng.Rademacher, Source: src, Seed: 11},
			core.Options{Dist: rng.SJLT, Sparsity: 2, Source: src, Seed: 12},
			core.Options{Dist: rng.CountSketch, Source: src, Seed: 13},
		)
	}
	return out
}

// intCSC builds an m×n CSC with small-integer values, the regime where
// sketch arithmetic is exact (±1 and ±1/√s times small ints accumulate
// without rounding), so incremental and from-scratch sketches must agree
// bit for bit, not merely within tolerance.
func intCSC(m, n, nnz int, seed int64) *sparse.CSC {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(m, n, nnz)
	seen := make(map[[2]int]bool)
	for len(seen) < nnz {
		i, j := r.Intn(m), r.Intn(n)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		v := float64(r.Intn(7) - 3)
		if v == 0 {
			v = 4
		}
		coo.Append(i, j, v)
	}
	return coo.ToCSC()
}

// oneShot computes the reference Â with a fresh plan outside the service.
func oneShot(t *testing.T, a *sparse.CSC, d int, opts core.Options) *dense.Matrix {
	t.Helper()
	p, err := core.NewPlan(a.Clone(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	if _, err := p.Execute(ahat); err != nil {
		t.Fatal(err)
	}
	return ahat
}

// sameBits fails unless x and y are identical down to the float bit
// patterns (so ±0.0 and NaN payloads count as differences).
func sameBits(t *testing.T, label string, x, y *dense.Matrix) {
	t.Helper()
	if x.Rows != y.Rows || x.Cols != y.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, x.Rows, x.Cols, y.Rows, y.Cols)
	}
	for j := 0; j < x.Cols; j++ {
		xc, yc := x.Col(j), y.Col(j)
		for i := range xc {
			if math.Float64bits(xc[i]) != math.Float64bits(yc[i]) {
				t.Fatalf("%s: bit mismatch at (%d,%d): %x vs %x",
					label, i, j, math.Float64bits(xc[i]), math.Float64bits(yc[i]))
			}
		}
	}
}

// TestSketchRefDifferential pins the by-reference core contract: sketching
// a stored matrix by fingerprint returns bit-identical results to the
// inline path and to a one-shot plan, across the store-miss-then-upload,
// plan-cache-hit, and Â-cache-hit paths, for every family×source config.
func TestSketchRefDifferential(t *testing.T) {
	ctx := context.Background()
	for _, opts := range refConfigs() {
		opts := opts
		t.Run(fmt.Sprintf("%v-%v", opts.Dist, opts.Source), func(t *testing.T) {
			svc := New(Config{})
			defer svc.Close()
			a := intCSC(60, 24, 180, 5)
			const d = 8
			want := oneShot(t, a, d, opts)

			// Unknown fingerprint: by-ref must fail NotFound, not guess.
			fp := a.Fingerprint()
			if _, _, err := svc.SketchRef(ctx, fp, d, opts); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("sketch-by-ref before upload: %v, want store.ErrNotFound", err)
			}

			// Upload then sketch by reference: the miss path executes a plan
			// built from the stored matrix.
			info, err := svc.PutMatrix(ctx, a)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Created || info.Fp != fp {
				t.Fatalf("put: %+v, want created under %v", info, fp)
			}
			got, _, err := svc.SketchRef(ctx, fp, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "by-ref vs one-shot", got, want)

			// Repeat request: served from the Â cache, no new plan build.
			builds := svc.Stats().Builds
			again, _, err := svc.SketchRef(ctx, fp, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "by-ref repeat (Â-cache hit)", again, want)
			if b := svc.Stats().Builds; b != builds {
				t.Fatalf("repeat by-ref built a plan (%d -> %d builds)", builds, b)
			}

			// Inline path on the same service: one answer per (A, d, opts),
			// however the matrix arrives.
			inline, _, err := svc.Sketch(ctx, a, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "inline vs by-ref", inline, want)
		})
	}
}

// TestSketchRefPostEvictReupload drives the full 404 cure: a matrix evicted
// by the store's byte budget turns by-ref requests into NotFound until the
// client re-uploads, after which the bits match the pre-eviction answer.
func TestSketchRefPostEvictReupload(t *testing.T) {
	ctx := context.Background()
	a := intCSC(60, 24, 180, 6)
	b := intCSC(60, 24, 180, 7)
	// Budget fits one matrix: the second upload evicts the first (nothing
	// pins it — no sketch has been taken, so no plan holds a handle).
	svc := New(Config{StoreBytes: a.MemoryBytes() + 16})
	defer svc.Close()
	opts := core.Options{Dist: rng.SJLT, Sparsity: 2, Seed: 9}
	const d = 8
	want := oneShot(t, a, d, opts)

	if _, err := svc.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PutMatrix(ctx, b); err != nil {
		t.Fatal(err)
	}
	if svc.Store().Contains(a.Fingerprint()) {
		t.Fatal("a must have been evicted by b's upload")
	}
	if _, _, err := svc.SketchRef(ctx, a.Fingerprint(), d, opts); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("post-evict sketch: %v, want store.ErrNotFound", err)
	}
	// The cure: upload again (b is evicted in turn), then sketch.
	if _, err := svc.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	got, _, err := svc.SketchRef(ctx, a.Fingerprint(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "post-evict re-upload", got, want)
}

// patchDelta builds a ΔA for base that exercises the degenerate shapes in
// one matrix: a brand-new entry, an entry in a column base leaves empty,
// and an entry that exactly cancels an existing value of base.
func patchDelta(t *testing.T, base *sparse.CSC, emptyCol int) *sparse.CSC {
	t.Helper()
	if base.ColPtr[emptyCol+1] != base.ColPtr[emptyCol] {
		t.Fatalf("column %d of base is not empty", emptyCol)
	}
	// Find an existing entry to cancel.
	var ci, cj int
	var cv float64
	found := false
	for j := 0; j < base.N && !found; j++ {
		if base.ColPtr[j+1] > base.ColPtr[j] {
			p := base.ColPtr[j]
			ci, cj, cv = base.RowIdx[p], j, base.Val[p]
			found = true
		}
	}
	if !found {
		t.Fatal("base has no entries to cancel")
	}
	coo := sparse.NewCOO(base.M, base.N, 3)
	coo.Append(ci, cj, -cv)            // cancels to exact zero: entry drops out
	coo.Append(base.M-1, emptyCol, 2)  // lands in a previously empty column
	coo.Append(base.M/2, base.N-1, -3) // plain new entry
	return coo.ToCSC()
}

// intCSCWithEmptyCol is intCSC with one column guaranteed empty.
func intCSCWithEmptyCol(m, n, nnz int, seed int64, emptyCol int) *sparse.CSC {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(m, n, nnz)
	seen := make(map[[2]int]bool)
	for len(seen) < nnz {
		i, j := r.Intn(m), r.Intn(n)
		if j == emptyCol || seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		v := float64(r.Intn(7) - 3)
		if v == 0 {
			v = 4
		}
		coo.Append(i, j, v)
	}
	return coo.ToCSC()
}

// TestPatchMetamorphic pins the incremental-update law sketch(A) + sketch(ΔA)
// == sketch(A+ΔA) end to end: after PatchMatrix, sketching the new
// fingerprint returns exactly the bits of a from-scratch sketch of the
// merged matrix — served from the incrementally advanced Â cache, with no
// plan ever built over the merged matrix.
func TestPatchMetamorphic(t *testing.T) {
	ctx := context.Background()
	const emptyCol = 5
	for _, opts := range refConfigs() {
		opts := opts
		t.Run(fmt.Sprintf("%v-%v", opts.Dist, opts.Source), func(t *testing.T) {
			svc := New(Config{})
			defer svc.Close()
			a := intCSCWithEmptyCol(60, 24, 150, 21, emptyCol)
			delta := patchDelta(t, a, emptyCol)
			const d = 8

			if _, err := svc.PutMatrix(ctx, a); err != nil {
				t.Fatal(err)
			}
			base, _, err := svc.SketchRef(ctx, a.Fingerprint(), d, opts)
			if err != nil {
				t.Fatal(err)
			}
			builds := svc.Stats().Builds

			info, err := svc.PatchMatrix(ctx, a.Fingerprint(), delta)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := sparse.Add(a, delta)
			if err != nil {
				t.Fatal(err)
			}
			if info.Fp != merged.Fingerprint() {
				t.Fatalf("patch stored %v, want fingerprint of A+ΔA %v", info.Fp, merged.Fingerprint())
			}
			if !svc.Store().Contains(a.Fingerprint()) {
				t.Fatal("patch must not disturb the original matrix")
			}

			got, _, err := svc.SketchRef(ctx, info.Fp, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "incremental vs from-scratch", got, oneShot(t, merged, d, opts))
			if b := svc.Stats().Builds; b != builds {
				t.Fatalf("post-patch sketch rebuilt a plan (%d -> %d builds): the Â must come from the incremental path", builds, b)
			}

			// The old fingerprint still answers with the old bits.
			old, _, err := svc.SketchRef(ctx, a.Fingerprint(), d, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "pre-patch sketch unchanged", old, base)
		})
	}
}

// TestPatchDegenerateAndChained covers the delta edge cases on one config:
// an empty ΔA is an exact no-op (same fingerprint, same bits), and a chain
// of PATCHes composes — every link advanced incrementally, with the final
// bits equal to a one-shot sketch of the fully merged matrix.
func TestPatchDegenerateAndChained(t *testing.T) {
	ctx := context.Background()
	opts := core.Options{Dist: rng.Rademacher, Seed: 31}
	const d, emptyCol = 8, 3
	svc := New(Config{})
	defer svc.Close()
	a := intCSCWithEmptyCol(50, 20, 120, 41, emptyCol)
	fp := a.Fingerprint()
	if _, err := svc.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	base, _, err := svc.SketchRef(ctx, fp, d, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Empty delta: A + 0 must map to A itself — same fingerprint (Created
	// false), and the served sketch is byte-for-byte the cached one.
	empty := &sparse.CSC{M: a.M, N: a.N, ColPtr: make([]int, a.N+1)}
	info, err := svc.PatchMatrix(ctx, fp, empty)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fp != fp || info.Created {
		t.Fatalf("empty patch: %+v, want existing %v", info, fp)
	}
	same, _, err := svc.SketchRef(ctx, fp, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "empty patch is identity", same, base)

	// Chain: A -> A+Δ1 -> A+Δ1+Δ2, never resketching from scratch.
	d1 := patchDelta(t, a, emptyCol)
	m1, err := sparse.Add(a, d1)
	if err != nil {
		t.Fatal(err)
	}
	builds := svc.Stats().Builds
	i1, err := svc.PatchMatrix(ctx, fp, d1)
	if err != nil {
		t.Fatal(err)
	}
	coo := sparse.NewCOO(a.M, a.N, 2)
	coo.Append(0, emptyCol, 5)
	coo.Append(a.M-1, 0, -1)
	d2 := coo.ToCSC()
	m2, err := sparse.Add(m1, d2)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := svc.PatchMatrix(ctx, i1.Fp, d2)
	if err != nil {
		t.Fatal(err)
	}
	if i2.Fp != m2.Fingerprint() {
		t.Fatalf("chained patch stored %v, want %v", i2.Fp, m2.Fingerprint())
	}
	got, _, err := svc.SketchRef(ctx, i2.Fp, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "chained patches vs one-shot of full merge", got, oneShot(t, m2, d, opts))
	if b := svc.Stats().Builds; b != builds {
		t.Fatalf("patch chain built plans (%d -> %d)", builds, b)
	}
}

// TestByRefConcurrent hammers the whole by-ref surface — uploads, by-ref
// sketches with the NotFound-then-upload cure, and patches — against a
// store small enough to evict constantly. Run under -race this checks the
// handle/pin discipline; the final assertions check answers stayed right.
func TestByRefConcurrent(t *testing.T) {
	ctx := context.Background()
	const nMat, workers, iters, d = 6, 8, 60, 6
	mats := make([]*sparse.CSC, nMat)
	wants := make([]*dense.Matrix, nMat)
	opts := core.Options{Dist: rng.CountSketch, Seed: 77}
	for i := range mats {
		mats[i] = intCSC(40, 16, 100, int64(100+i))
		wants[i] = oneShot(t, mats[i], d, opts)
	}
	svc := New(Config{
		StoreBytes:       3 * mats[0].MemoryBytes(),
		SketchCacheBytes: 2 * wants[0].MemoryBytes(),
	})
	defer svc.Close()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				a := mats[r.Intn(nMat)]
				fp := a.Fingerprint()
				switch r.Intn(3) {
				case 0:
					if _, err := svc.PutMatrix(ctx, a); err != nil {
						errc <- err
						return
					}
				case 1:
					got, _, err := svc.SketchRef(ctx, fp, d, opts)
					if errors.Is(err, store.ErrNotFound) {
						if _, err := svc.PutMatrix(ctx, a); err != nil {
							errc <- err
							return
						}
						got, _, err = svc.SketchRef(ctx, fp, d, opts)
						if errors.Is(err, store.ErrNotFound) {
							continue // evicted again under pressure: legal
						}
					}
					if err != nil {
						errc <- err
						return
					}
					for i := range mats {
						if mats[i].Fingerprint() == fp {
							for j := 0; j < got.Cols; j++ {
								gc, wc := got.Col(j), wants[i].Col(j)
								for k := range gc {
									if math.Float64bits(gc[k]) != math.Float64bits(wc[k]) {
										errc <- fmt.Errorf("worker %d: bits diverged for matrix %d", w, i)
										return
									}
								}
							}
						}
					}
				case 2:
					// Patch with an empty delta: exercises the patch path
					// without changing any expected answer.
					empty := &sparse.CSC{M: a.M, N: a.N, ColPtr: make([]int, a.N+1)}
					if _, err := svc.PatchMatrix(ctx, fp, empty); err != nil &&
						!errors.Is(err, store.ErrNotFound) {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := svc.Store().Stats()
	if st.Bytes < 0 || st.Matrices < 0 {
		t.Fatalf("store accounting went negative: %+v", st)
	}
}
