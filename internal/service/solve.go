package service

import (
	"container/list"
	"context"
	"math"
	"sync"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/obs"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
)

// This file is the solver serving surface behind POST /v1/solve
// (DESIGN.md §13). A solve reuses both service caches:
//
//   - The SAP sketch Â = S·A routes through the fingerprint-keyed plan
//     cache (and, for by-reference requests, the Â cache), so a solve after
//     a sketch of the same matrix pays no second plan build.
//   - The preconditioner factors (R for SAP-QR/min-norm, V/Σ for SAP-SVD)
//     land in their own byte-bounded LRU keyed by (fingerprint, method, d,
//     sketch options). A repeat solve against the same matrix skips the
//     sketch AND the dense factorization and goes straight to LSQR.
//
// Both reuse paths are bit-transparent: the plan-cache surface is
// bit-identical to a fresh plan, and BuildPrecond/SolvePrecond are
// deterministic, so a cache-hit solve returns exactly the bits of a direct
// solver.Solve — the served-vs-direct differential suite pins this.

// DefaultPrecondCacheBytes is the preconditioner-cache budget when
// Config.PrecondCacheBytes is 0: 32 MiB of R/V/Σ factors.
const DefaultPrecondCacheBytes = 32 << 20

// SolveRequest is one solve through the service. Exactly one matrix
// identity is set: A inline, or Fp (with ByRef) naming a stored matrix.
type SolveRequest struct {
	Method solver.Method
	A      *sparse.CSC
	ByRef  bool
	Fp     sparse.Fingerprint
	// B is the right-hand side (ignored by MethodRandSVD).
	B []float64
	// Opts carries the solver knobs; Opts.Progress observes LSQR
	// iterations (the async job layer wires it to job state).
	Opts solver.Options
	// Rank, Oversample and PowerIters configure MethodRandSVD.
	Rank       int
	Oversample int
	PowerIters int
}

// SolveResult is a solve's outcome: a solution vector (least-squares
// methods) or low-rank factors (MethodRandSVD), plus cost and quality.
type SolveResult struct {
	X       []float64
	Factors *solver.RSVDResult
	Info    solver.Info
	// Residual is the achieved backward error (solver.ErrorMetric) of X;
	// 0 for factor results.
	Residual float64
	// PrecondCached reports whether the preconditioner came from the
	// cache (Info still carries the original build's timings).
	PrecondCached bool
}

// Solve runs one solve through the admission gate and the solver caches.
// By-reference requests resolve the fingerprint at execution time — a
// matrix evicted between request admission and execution surfaces
// store.ErrNotFound, exactly like a sketch-by-reference miss. The service
// does not retain req.A or req.B beyond the call.
//
// Unlike SketchInto, Solve does not apply Config.RequestTimeout: solves
// are admitted by the same gate but run to completion under the caller's
// context alone (async jobs are cancelled through their own DELETE path,
// not a wall-clock guess).
func (s *Service) Solve(ctx context.Context, req *SolveRequest) (*SolveResult, error) {
	start := time.Now()
	if req == nil || (!req.ByRef && req.A == nil) {
		return nil, core.ErrNilMatrix
	}
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer s.exit()
	s.solveMet.requests.Inc()

	a := req.A
	fp := req.Fp
	if req.ByRef {
		h, err := s.store.Get(fp)
		if err != nil {
			s.solveMet.errors.Inc()
			return nil, err
		}
		defer h.Release()
		a = h.Matrix()
	} else {
		fp = a.Fingerprint()
	}

	res, err := s.dispatch(ctx, a, fp, req)
	if err != nil {
		s.solveMet.errors.Inc()
		if ctx.Err() != nil {
			s.met.cancels.Inc()
		}
		return nil, err
	}
	res.Info.Total = time.Since(start)
	s.solveMet.latency.Observe(res.Info.Total)
	s.solveMet.iterations.Add(int64(res.Info.Iters))
	if res.X != nil {
		s.solveMet.lastResidual.Set(res.Residual)
		s.solveMet.lastContraction.Set(contractionEstimate(res.Residual, res.Info.Iters))
	}
	return res, nil
}

// dispatch routes the admitted request by method.
func (s *Service) dispatch(ctx context.Context, a *sparse.CSC, fp sparse.Fingerprint, req *SolveRequest) (*SolveResult, error) {
	switch req.Method {
	case solver.MethodSAPQR, solver.MethodSAPSVD, solver.MethodMinNorm:
		p, cached, err := s.precondFor(ctx, a, fp, req)
		if err != nil {
			return nil, err
		}
		x, info, err := solver.SolvePrecond(ctx, a, req.B, p, req.Opts)
		if err != nil {
			return nil, err
		}
		return &SolveResult{
			X: x, Info: info, PrecondCached: cached,
			Residual: solver.ErrorMetric(a, x, req.B),
		}, nil
	case solver.MethodRandSVD:
		r, err := solver.RandSVDContext(ctx, a, req.Rank, req.Oversample, req.PowerIters, req.Opts.Sketch)
		if err != nil {
			return nil, err
		}
		return &SolveResult{
			Factors: r,
			Info: solver.Info{
				Method: solver.MethodRandSVD, Converged: true,
				SketchTime: r.SketchTime, Total: r.Total,
				MemoryBytes: r.U.MemoryBytes() + r.V.MemoryBytes() + int64(len(r.Sigma))*8,
			},
		}, nil
	default:
		// LSQR-D and the direct baseline: no cacheable stage, straight
		// through the solver (which rejects anything unknown).
		x, info, err := solver.SolveContext(ctx, req.Method, a, req.B, req.Opts)
		if err != nil {
			return nil, err
		}
		return &SolveResult{
			X: x, Info: info,
			Residual: solver.ErrorMetric(a, x, req.B),
		}, nil
	}
}

// precondFor resolves the preconditioner for a SAP-family solve: from the
// cache when resident, otherwise built with the sketch routed through the
// plan cache (SAP-QR/SVD; the min-norm build sketches the transpose, whose
// fingerprint the request does not carry, so it uses the direct path) and
// inserted for the next solve.
func (s *Service) precondFor(ctx context.Context, a *sparse.CSC, fp sparse.Fingerprint, req *SolveRequest) (*solver.Precond, bool, error) {
	var d int
	if req.Method == solver.MethodMinNorm {
		d = solver.MinNormSketchDim(a.M, req.Opts)
	} else {
		d = solver.SAPSketchDim(a.N, req.Opts)
	}
	k := precondKey{fp: fp, method: req.Method, d: d, opts: req.Opts.Sketch}
	if p := s.preconds.get(k); p != nil {
		s.solveMet.precondHits.Inc()
		return p, true, nil
	}
	s.solveMet.precondMisses.Inc()
	var sketch solver.SketchFunc
	if req.Method != solver.MethodMinNorm {
		sketch = s.planSketch(fp, req.ByRef)
	}
	p, err := solver.BuildPrecondSketch(ctx, req.Method, a, req.Opts, sketch)
	if err != nil {
		return nil, false, err
	}
	s.preconds.put(k, p)
	return p, false, nil
}

// planSketch returns a SketchFunc that computes Â through the service's
// plan cache under the solve matrix's fingerprint, and — for by-reference
// matrices — consults and populates the Â cache, so sketches and solves
// of the same stored matrix share work. The Â-cache fast path may return
// the shared cached matrix: it is immutable by contract and the
// preconditioner factorizations clone their input.
func (s *Service) planSketch(fp sparse.Fingerprint, byRef bool) solver.SketchFunc {
	return func(ctx context.Context, a *sparse.CSC, d int, o core.Options) (*dense.Matrix, time.Duration, error) {
		t0 := time.Now()
		k := planKey{fp: fp, d: d, opts: o}
		if byRef {
			if cached := s.sketches.get(k); cached != nil {
				return cached, time.Since(t0), nil
			}
		}
		src := planSrc{a: a}
		if byRef {
			src = planSrc{store: s.store, fp: fp}
		}
		p, e, err := s.plan(ctx, k, src)
		if err != nil {
			return nil, 0, err
		}
		defer p.Release()
		ahat := dense.NewMatrix(d, a.N)
		st, err := p.ExecuteContext(ctx, ahat)
		if err != nil {
			return nil, 0, err
		}
		e.record(st)
		if byRef {
			s.sketches.put(k, ahat.Clone())
		}
		return ahat, time.Since(t0), nil
	}
}

// contractionEstimate is the cheap per-iteration contraction-rate proxy
// exported as sketchsp_solve_contraction_estimate: residual^(1/iters), the
// geometric-mean factor by which each LSQR iteration shrank the backward
// error. It is a preconditioner-quality signal (smaller = better-
// conditioned A·R⁻¹), NOT the sketch distortion of solver.Distortion —
// that needs a full sparse QR of A and has no place on a serving path.
func contractionEstimate(resid float64, iters int) float64 {
	if iters <= 0 || resid <= 0 {
		return 0
	}
	return math.Exp(math.Log(resid) / float64(iters))
}

// precondKey identifies a cached preconditioner. The factors depend on
// exactly (matrix content, method, sketch size, sketch options) — Atol,
// MaxIters and SVDDrop act in the iterative stage, which is never cached.
type precondKey struct {
	fp     sparse.Fingerprint
	method solver.Method
	d      int
	opts   core.Options
}

// precondEntry is one cached preconditioner; bytes is the resident factor
// footprint (FactorBytes, not the transient sketch).
type precondEntry struct {
	key   precondKey
	p     *solver.Precond
	bytes int64
	elem  *list.Element
}

// precondCache is a byte-bounded LRU of preconditioner factors, the same
// shape as sketchCache: no single-flight (racing misses both build the
// same bits and last-write-wins), immutable entries, whole-entry eviction
// from the LRU tail.
type precondCache struct {
	max int64

	mu      sync.Mutex
	entries map[precondKey]*precondEntry
	lru     *list.List
	bytes   int64

	evictions *obs.Counter
}

func newPrecondCache(maxBytes int64, r *obs.Registry) *precondCache {
	if maxBytes == 0 {
		maxBytes = DefaultPrecondCacheBytes
	}
	c := &precondCache{
		max:     maxBytes,
		entries: make(map[precondKey]*precondEntry),
		lru:     list.New(),
	}
	if r != nil {
		c.evictions = r.Counter("sketchsp_solve_precond_evictions_total",
			"Preconditioners reclaimed by the factor-cache byte budget.")
		r.GaugeFunc("sketchsp_solve_precond_cache_bytes",
			"Summed bytes of cached preconditioner factors.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return c.bytes
			})
		r.GaugeFunc("sketchsp_solve_precond_cache_entries",
			"Preconditioners currently resident.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(c.lru.Len())
			})
	}
	return c
}

// get returns the cached preconditioner for k, or nil. Precond is
// immutable and safe for concurrent SolvePrecond calls.
func (c *precondCache) get(k precondKey) *solver.Precond {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e.p
}

// put inserts p under k, replacing any racing insert (same key ⇒ same
// bits) and evicting from the tail past the byte budget.
func (c *precondCache) put(k precondKey, p *solver.Precond) {
	bytes := p.FactorBytes()
	c.mu.Lock()
	if old, ok := c.entries[k]; ok {
		c.lru.Remove(old.elem)
		delete(c.entries, k)
		c.bytes -= old.bytes
	}
	e := &precondEntry{key: k, p: p, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += bytes
	for c.max >= 0 && c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*precondEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= old.bytes
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
}

// solveMetrics is the sketchsp_solve_* family — kept apart from svcMetrics
// so the sketchsp_service_* cardinality stays exactly the sketch-serving
// story (TestStatsMetricsReconcile pins it).
type solveMetrics struct {
	requests        *obs.Counter
	errors          *obs.Counter
	precondHits     *obs.Counter
	precondMisses   *obs.Counter
	iterations      *obs.Counter
	latency         *obs.Histogram
	lastResidual    *obs.FloatGauge
	lastContraction *obs.FloatGauge
}

func newSolveMetrics(r *obs.Registry) *solveMetrics {
	return &solveMetrics{
		requests: r.Counter("sketchsp_solve_requests_total",
			"Solve requests admitted (all methods)."),
		errors: r.Counter("sketchsp_solve_errors_total",
			"Solve requests that failed (build, iterate, cancel, or unknown fingerprint)."),
		precondHits: r.Counter("sketchsp_solve_precond_hits_total",
			"SAP solves served from the preconditioner cache (no sketch, no factorization)."),
		precondMisses: r.Counter("sketchsp_solve_precond_misses_total",
			"SAP solves that built (and cached) a preconditioner."),
		iterations: r.Counter("sketchsp_solve_iterations_total",
			"Summed LSQR iterations across completed solves (rate = iterations/s)."),
		latency: r.Histogram("sketchsp_solve_seconds",
			"Completed solve latency, admission queueing included."),
		lastResidual: r.FloatGauge("sketchsp_solve_last_residual",
			"Achieved backward error of the most recent solution."),
		lastContraction: r.FloatGauge("sketchsp_solve_contraction_estimate",
			"Per-iteration contraction proxy residual^(1/iters) of the most recent solve."),
	}
}
