package service

import (
	"context"
	"errors"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// Backend is the shard-agnostic serving surface: everything a request
// router needs from "something that can sketch". The local plan-cache
// Service implements it by executing in process; the shard Coordinator
// implements it by splitting the matrix into column shards, fanning them
// out to worker backends over the network, and merging the exact partial
// sketches — the two are interchangeable behind the HTTP server, which is
// what turns a single sketchd into a coordinator without touching the
// handler or codec layers.
//
// Contract (shared by both implementations, pinned by their suites):
//
//   - Sketch returns Â bit-identical to a direct core.NewPlan + Execute for
//     the same (a, d, opts) — caching, sharding and merging may change the
//     cost, never the bits.
//   - Errors unwrap to the canonical sentinels (core.ErrNilMatrix,
//     ErrOverloaded, ErrClosed, ...) so callers classify uniformly.
//   - The backend does not retain a beyond the call.
//   - Close is idempotent; requests after Close fail with ErrClosed.
type Backend interface {
	Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error)
	SketchBatch(ctx context.Context, reqs []Request) []Response
	Close()
}

// RefBackend is the content-addressed extension of Backend: upload once,
// sketch by fingerprint, update with sparse deltas. The additional
// contract (DESIGN.md §12, pinned by the by-ref differential and
// metamorphic suites):
//
//   - SketchRef(fp, d, opts) is bit-identical to Sketch(A, d, opts) for
//     the stored A — by-reference changes bytes on the wire, never bits
//     in the answer.
//   - An unknown fingerprint fails with an error unwrapping to
//     store.ErrNotFound; PutMatrix-then-retry is the cure.
//   - PatchMatrix(fp, ΔA) makes A+ΔA addressable under its own
//     fingerprint without disturbing fp — stored content is immutable.
type RefBackend interface {
	Backend
	PutMatrix(ctx context.Context, a *sparse.CSC) (store.Info, error)
	SketchRef(ctx context.Context, fp sparse.Fingerprint, d int, opts core.Options) (*dense.Matrix, core.Stats, error)
	PatchMatrix(ctx context.Context, fp sparse.Fingerprint, delta *sparse.CSC) (store.Info, error)
}

// SolveBackend is the solver extension of Backend: POST /v1/solve routes
// here. The contract (pinned by the served-vs-direct differential suite):
//
//   - Solve returns bits identical to a direct solver.Solve /
//     solver.RandSVD for the same (matrix, b, options) — plan-cache and
//     preconditioner-cache reuse change the cost, never the answer.
//   - A by-reference request resolves its fingerprint at execution time;
//     a matrix no longer resident fails with store.ErrNotFound even if it
//     was resident at request admission (the async-job eviction race).
//   - req.Opts.Progress, when set, observes LSQR iterations; ctx cancels
//     between iterations.
type SolveBackend interface {
	Solve(ctx context.Context, req *SolveRequest) (*SolveResult, error)
}

// PeerAdmin is the dynamic-membership surface a Backend may additionally
// offer; the shard coordinator implements it, and the HTTP server mounts
// GET/POST/DELETE /v1/peers when the backend does. The contract (pinned by
// the shard membership suite):
//
//   - AddPeer is idempotent: adding a member returns nil without change.
//   - RemovePeer of a non-member fails with an error unwrapping to
//     ErrUnknownPeer; removing the last member is refused (a coordinator
//     with no workers can serve nothing).
//   - Changes re-route new requests only — requests already in flight
//     complete against the membership they started with.
type PeerAdmin interface {
	AddPeer(peer string) error
	RemovePeer(peer string) error
	Peers() []string
}

// ErrUnknownPeer is returned by PeerAdmin.RemovePeer when the named peer is
// not a member.
var ErrUnknownPeer = errors.New("service: unknown peer")

// The local service is the reference Backend, RefBackend and SolveBackend.
var (
	_ Backend      = (*Service)(nil)
	_ RefBackend   = (*Service)(nil)
	_ SolveBackend = (*Service)(nil)
)
