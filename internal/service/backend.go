package service

import (
	"context"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// Backend is the shard-agnostic serving surface: everything a request
// router needs from "something that can sketch". The local plan-cache
// Service implements it by executing in process; the shard Coordinator
// implements it by splitting the matrix into column shards, fanning them
// out to worker backends over the network, and merging the exact partial
// sketches — the two are interchangeable behind the HTTP server, which is
// what turns a single sketchd into a coordinator without touching the
// handler or codec layers.
//
// Contract (shared by both implementations, pinned by their suites):
//
//   - Sketch returns Â bit-identical to a direct core.NewPlan + Execute for
//     the same (a, d, opts) — caching, sharding and merging may change the
//     cost, never the bits.
//   - Errors unwrap to the canonical sentinels (core.ErrNilMatrix,
//     ErrOverloaded, ErrClosed, ...) so callers classify uniformly.
//   - The backend does not retain a beyond the call.
//   - Close is idempotent; requests after Close fail with ErrClosed.
type Backend interface {
	Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error)
	SketchBatch(ctx context.Context, reqs []Request) []Response
	Close()
}

// The local service is the reference Backend.
var _ Backend = (*Service)(nil)
