package service

import (
	"container/list"
	"context"
	"sync"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
)

// planKey identifies a cacheable plan: the structural fingerprint of the
// input matrix plus the sketch configuration. core.Options is a flat struct
// of scalars, so the key is comparable and map lookups allocate nothing.
// Options are keyed verbatim: requests that spell the same effective
// configuration differently (Workers 0 vs the resolved GOMAXPROCS) cache
// separately, which costs a duplicate plan but never a wrong answer.
type planKey struct {
	fp   sparse.Fingerprint
	d    int
	opts core.Options
}

// planSrc names where a plan's input matrix comes from. Exactly one form is
// set: a (inline request — the build deep-copies it) or store+fp
// (by-reference request — the build resolves and pins the stored matrix).
// It is a flat by-value struct, not a closure, so the cache-hit path stays
// allocation-free (TestServiceHitZeroAlloc pins this).
type planSrc struct {
	a     *sparse.CSC
	store *store.Store
	fp    sparse.Fingerprint
}

// entry is one cache slot: the single-flight build state plus the per-entry
// aggregation of execute metrics. The cache's reference to the plan is the
// initial NewPlan reference, released by entry.close on eviction; every
// request Retains around its own Execute.
type entry struct {
	key    planKey
	ready  chan struct{} // closed when the build finished (plan or err set)
	plan   *core.Plan
	handle *store.Handle // pin on the stored matrix a by-ref plan aliases
	err    error
	elem   *list.Element

	mu       sync.Mutex // guards the aggregates below
	executes int64
	steals   int64
	busy     time.Duration
	imbN     int64 // parallel rounds that measured an imbalance ratio
	imbSum   float64
	imbMax   float64
}

// record folds one execute's stats into the entry aggregates.
func (e *entry) record(st core.Stats) {
	e.mu.Lock()
	e.executes++
	e.steals += st.Steals
	e.busy += st.Total
	if st.Imbalance > 0 {
		e.imbN++
		e.imbSum += st.Imbalance
		if st.Imbalance > e.imbMax {
			e.imbMax = st.Imbalance
		}
	}
	e.mu.Unlock()
}

// close releases the cache's plan reference. It waits for an in-progress
// build first (an entry can be evicted while still building under churn);
// in-flight executes are unaffected — they hold their own references. The
// store pin, if any, is dropped here too: a straggling execute that outlives
// the cache's reference still reads the matrix safely (the plan keeps it
// reachable and stored matrices are immutable) — the pin only guarantees
// store *residency* while the plan is cached.
func (e *entry) close() {
	<-e.ready
	if e.plan != nil {
		e.plan.Close()
	}
	if e.handle != nil {
		e.handle.Release()
	}
}

// plan resolves the key to a live, Retain-ed plan, building it under
// single-flight on a miss. The caller must Release the returned plan. The
// returned entry is valid for stats recording as long as the plan is held.
//
// The retry loop covers one rare race: between observing a ready entry and
// Retain-ing its plan, an eviction plus the last concurrent Release may
// have shut the plan down. Retain then reports false and the request
// rebuilds — correctness never depends on eviction timing.
func (s *Service) plan(ctx context.Context, k planKey, src planSrc) (*core.Plan, *entry, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, nil, ErrClosed
		}
		e, ok := s.entries[k]
		var evicted []*entry
		if ok {
			s.lru.MoveToFront(e.elem)
			s.met.hits.Inc()
			s.mu.Unlock()
		} else {
			s.met.misses.Inc()
			e = &entry{key: k, ready: make(chan struct{})}
			e.elem = s.lru.PushFront(e)
			s.entries[k] = e
			evicted = s.evictLocked()
			s.mu.Unlock()
			for _, old := range evicted {
				// Closing may wait on a foreign in-progress build; do it
				// off the request path.
				go old.close()
			}
			s.build(e, src)
		}

		select {
		case <-e.ready:
		case <-ctx.Done():
			s.met.cancels.Inc()
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			return nil, nil, e.err
		}
		if e.plan.Retain() {
			return e.plan, e, nil
		}
		// Plan fully released under us: drop the dead entry if it is still
		// mapped, then retry (rebuilding if necessary).
		s.mu.Lock()
		if cur, ok := s.entries[k]; ok && cur == e {
			delete(s.entries, k)
			s.lru.Remove(e.elem)
		}
		s.mu.Unlock()
	}
}

// build constructs the plan for a freshly inserted entry and publishes the
// outcome by closing ready. Exactly one goroutine per entry runs this — the
// one that inserted it — which is the single-flight guarantee the
// concurrency suite asserts (builds == distinct keys, regardless of how
// many requests raced). A failed build removes the entry so later requests
// retry instead of caching the error forever.
func (s *Service) build(e *entry, src planSrc) {
	defer close(e.ready)
	// The cache keeps the plan alive long after this request returns, but
	// core.NewPlan aliases the matrix it is given (it clones only for
	// ScaledInt). For an inline source, callers are free to reuse or mutate
	// a's backing arrays once their request completes — the HTTP server
	// decodes requests into pooled scratch — so the cached plan must own a
	// private deep copy; otherwise later cache hits would execute against
	// whatever bytes the caller wrote there next. Cloning here keeps the hit
	// path untouched: the copy happens once per plan, on the build (miss)
	// path only.
	//
	// A by-ref source needs no copy at all: stored matrices are immutable
	// for life, so the plan aliases the store's copy and the entry pins it
	// resident with a Handle. A fingerprint that resolves to nothing (never
	// uploaded, or evicted) fails the build with store.ErrNotFound; the
	// entry is removed, so the client's upload-then-retry rebuilds cleanly.
	a := src.a
	if a != nil {
		a = a.Clone()
	} else {
		h, err := src.store.Get(src.fp)
		if err != nil {
			e.err = err
			s.dropFailedBuild(e)
			return
		}
		e.handle = h
		a = h.Matrix()
	}
	p, err := core.NewPlan(a, e.key.d, e.key.opts)
	if err != nil {
		e.err = err
		if e.handle != nil {
			e.handle.Release()
			e.handle = nil
		}
		s.dropFailedBuild(e)
		return
	}
	s.met.builds.Inc()
	// Attach the shared execute-stage metrics before the entry is published
	// (close(ready) gives the happens-before edge): every execute on any
	// cached plan lands in the same sketchsp_plan_* series.
	p.SetMetrics(s.met.plan)
	e.plan = p
}

// dropFailedBuild unmaps an entry whose build failed so later requests for
// the key retry instead of caching the error forever.
func (s *Service) dropFailedBuild(e *entry) {
	s.met.buildErrors.Inc()
	s.mu.Lock()
	if cur, ok := s.entries[e.key]; ok && cur == e {
		delete(s.entries, e.key)
		s.lru.Remove(e.elem)
	}
	s.mu.Unlock()
}

// evictLocked trims the LRU tail down to capacity and returns the evicted
// entries for the caller to close outside the lock (entry.close can block
// on a build and on the plan's execute gate). Called with s.mu held.
func (s *Service) evictLocked() []*entry {
	var out []*entry
	for s.lru.Len() > s.cfg.Capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.met.evictions.Inc()
		out = append(out, e)
	}
	return out
}
