package service

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// This file probes the PATCH path outside the integer-exact regime pinned by
// TestPatchMetamorphic. With generic float values the incremental update
// Â += S·ΔA and the from-scratch sketch S·(A+ΔA) sum the same terms in a
// different order, so bit-identity is NOT guaranteed — what the service does
// guarantee (DESIGN.md §12) is that the drift after a chain of patches stays
// at rounding noise, not something that compounds with the chain length.

// floatDelta builds an m×n delta with nnz generic (non-integer) values, the
// regime where fl(a+b) rounds and summation order matters.
func floatDelta(m, n, nnz int, seed int64) *sparse.CSC {
	r := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(m, n, nnz)
	seen := make(map[[2]int]bool)
	for len(seen) < nnz {
		i, j := r.Intn(m), r.Intn(n)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		coo.Append(i, j, r.NormFloat64())
	}
	return coo.ToCSC()
}

// relFrob is the relative Frobenius distance ||x-y||_F / ||y||_F.
func relFrob(t *testing.T, x, y *dense.Matrix) float64 {
	t.Helper()
	if x.Rows != y.Rows || x.Cols != y.Cols {
		t.Fatalf("shape %dx%d vs %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	var diff, ref float64
	for j := 0; j < x.Cols; j++ {
		xc, yc := x.Col(j), y.Col(j)
		for i := range xc {
			d := xc[i] - yc[i]
			diff += d * d
			ref += yc[i] * yc[i]
		}
	}
	if ref == 0 {
		t.Fatal("reference sketch is identically zero")
	}
	return math.Sqrt(diff / ref)
}

// TestPatchFloatDrift chains PATCHes of float-valued deltas onto a
// float-valued base and compares the incrementally advanced Â against a
// one-shot sketch of the fully merged matrix. Each link must come from the
// incremental path (no plan rebuild), and the accumulated drift must stay
// within a few ulps' worth of relative Frobenius error — far below the
// sketch's own O(1/√d) approximation error, so callers never need to
// distinguish a patched Â from a fresh one.
func TestPatchFloatDrift(t *testing.T) {
	ctx := context.Background()
	const (
		m, n     = 80, 30
		d        = 8
		links    = 5
		maxDrift = 1e-12
	)
	for _, opts := range refConfigs() {
		opts := opts
		t.Run(fmt.Sprintf("%v-%v", opts.Dist, opts.Source), func(t *testing.T) {
			svc := New(Config{})
			defer svc.Close()

			merged := sparse.RandomUniform(m, n, 0.08, 31)
			if _, err := svc.PutMatrix(ctx, merged); err != nil {
				t.Fatal(err)
			}
			if _, _, err := svc.SketchRef(ctx, merged.Fingerprint(), d, opts); err != nil {
				t.Fatal(err)
			}
			builds := svc.Stats().Builds

			fp := merged.Fingerprint()
			for k := 0; k < links; k++ {
				delta := floatDelta(m, n, 40, 100+int64(k))
				info, err := svc.PatchMatrix(ctx, fp, delta)
				if err != nil {
					t.Fatalf("patch %d: %v", k, err)
				}
				if merged, err = sparse.Add(merged, delta); err != nil {
					t.Fatal(err)
				}
				fp = info.Fp
			}

			got, _, err := svc.SketchRef(ctx, fp, d, opts)
			if err != nil {
				t.Fatal(err)
			}
			if b := svc.Stats().Builds; b != builds {
				t.Fatalf("patched sketch rebuilt a plan (%d -> %d builds): drift law only covers the incremental path", builds, b)
			}
			if drift := relFrob(t, got, oneShot(t, merged, d, opts)); drift > maxDrift {
				t.Fatalf("relative Frobenius drift after %d patches = %g, want <= %g", links, drift, maxDrift)
			}
		})
	}
}
