// Package store is the content-addressed matrix store behind the
// sketch-by-reference protocol: clients PUT a CSC matrix once, keyed by its
// sparse.Fingerprint, and every later sketch request ships only the 32-byte
// fingerprint instead of the O(nnz) payload — the network-side analogue of
// the paper's "never materialise S" argument, applied to A itself.
//
// The store is a refcounted, memory-bounded LRU:
//
//   - Put validates and deep-copies the matrix in, so no caller retains a
//     path to mutate a stored matrix; entries are immutable for their whole
//     lifetime (a PATCH creates a new entry under the new fingerprint — it
//     never edits in place, which is what lets plans alias stored matrices
//     without cloning).
//   - Get hands out a Handle that pins the entry: eviction walks the LRU
//     tail but skips any entry with live handles, so a matrix serving a
//     cached plan or an in-flight execute is never reclaimed under it. The
//     byte budget may therefore overshoot while everything resident is
//     pinned; it is re-trimmed as handles are released.
//   - Accounting is exact: an entry's bytes are added once on insert and
//     subtracted exactly once when it leaves the map, so the gauge can
//     never go negative (the race suite hammers this).
package store

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
)

// ErrNotFound is returned when no matrix with the requested fingerprint is
// resident — either it was never uploaded or the LRU reclaimed it. The wire
// layer maps it to StatusNotFound (HTTP 404); it is not retryable, but it is
// *curable*: the client's fallback re-uploads and retries once.
var ErrNotFound = errors.New("store: matrix not found")

// DefaultMaxBytes is the byte budget when Config.MaxBytes is 0: 256 MiB,
// roomy enough for hundreds of bench-sized matrices while bounding a
// misbehaving uploader.
const DefaultMaxBytes = 256 << 20

// Config sizes the store.
type Config struct {
	// MaxBytes bounds the summed MemoryBytes of resident matrices; the LRU
	// evicts unpinned entries beyond it. 0 selects DefaultMaxBytes;
	// negative means unbounded.
	MaxBytes int64
	// Metrics, when non-nil, registers the sketchsp_store_* families.
	Metrics *obs.Registry
}

// Info describes a stored matrix: its identity, its footprint, and whether
// the operation that returned it inserted the entry (false: it was already
// resident, byte-identical by fingerprint).
type Info struct {
	Fp      sparse.Fingerprint
	Bytes   int64
	Created bool
}

type entry struct {
	fp    sparse.Fingerprint
	a     *sparse.CSC // immutable once inserted
	bytes int64
	refs  int // live Handles; >0 pins the entry against eviction
	elem  *list.Element
}

// Store is the content-addressed matrix store. Safe for concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	entries map[sparse.Fingerprint]*entry
	lru     *list.List // of *entry; front = most recently used
	bytes   int64

	met *metrics
}

type metrics struct {
	puts      *obs.Counter
	dupPuts   *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// New returns a ready Store.
func New(cfg Config) *Store {
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	s := &Store{
		cfg:     cfg,
		entries: make(map[sparse.Fingerprint]*entry),
		lru:     list.New(),
	}
	if r := cfg.Metrics; r != nil {
		s.met = &metrics{
			puts: r.Counter("sketchsp_store_puts_total",
				"Matrices inserted into the content-addressed store."),
			dupPuts: r.Counter("sketchsp_store_duplicate_puts_total",
				"Puts that found their fingerprint already resident."),
			hits: r.Counter("sketchsp_store_hits_total",
				"Fingerprint lookups that found a resident matrix."),
			misses: r.Counter("sketchsp_store_misses_total",
				"Fingerprint lookups that found nothing (never uploaded or evicted)."),
			evictions: r.Counter("sketchsp_store_evictions_total",
				"Matrices reclaimed by the LRU byte budget."),
		}
		r.GaugeFunc("sketchsp_store_bytes",
			"Summed MemoryBytes of resident matrices.", func() int64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.bytes
			})
		r.GaugeFunc("sketchsp_store_matrices",
			"Matrices currently resident.", func() int64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return int64(s.lru.Len())
			})
	}
	return s
}

// Put validates a, deep-copies it into the store and returns its Info. A
// matrix already resident under the same fingerprint is not copied again
// (Created=false) — content addressing makes re-uploads idempotent.
func (s *Store) Put(a *sparse.CSC) (Info, error) {
	if a == nil {
		return Info{}, fmt.Errorf("store: nil matrix")
	}
	if err := a.Validate(); err != nil {
		return Info{}, err
	}
	return s.insert(a, true)
}

// PutOwned inserts a without copying: the caller hands over ownership and
// must never touch a's arrays again. This is the PATCH path — the merged
// A + ΔA is freshly allocated by sparse.Add, so cloning it again would only
// double the peak footprint. The matrix must already be valid.
func (s *Store) PutOwned(a *sparse.CSC) (Info, error) {
	if a == nil {
		return Info{}, fmt.Errorf("store: nil matrix")
	}
	return s.insert(a, false)
}

func (s *Store) insert(a *sparse.CSC, clone bool) (Info, error) {
	fp := a.Fingerprint()
	s.mu.Lock()
	if e, ok := s.entries[fp]; ok {
		s.lru.MoveToFront(e.elem)
		info := Info{Fp: fp, Bytes: e.bytes}
		s.mu.Unlock()
		if s.met != nil {
			s.met.dupPuts.Inc()
		}
		return info, nil
	}
	if clone {
		// Copy while holding the map reservation would serialise uploads;
		// but inserting first would expose a half-copied matrix. Copy
		// outside the lock and re-check: a racing identical Put wins
		// harmlessly (same bytes by fingerprint).
		s.mu.Unlock()
		a = a.Clone()
		s.mu.Lock()
		if e, ok := s.entries[fp]; ok {
			s.lru.MoveToFront(e.elem)
			info := Info{Fp: fp, Bytes: e.bytes}
			s.mu.Unlock()
			if s.met != nil {
				s.met.dupPuts.Inc()
			}
			return info, nil
		}
	}
	e := &entry{fp: fp, a: a, bytes: a.MemoryBytes()}
	e.elem = s.lru.PushFront(e)
	s.entries[fp] = e
	s.bytes += e.bytes
	// Pin the new entry through its own insertion trim: when everything
	// else resident is pinned, the budget walk would otherwise reclaim the
	// matrix being uploaded, turning Put into a silent no-op and the
	// client's 404-then-upload fallback into a loop.
	e.refs++
	s.evictLocked()
	e.refs--
	info := Info{Fp: fp, Bytes: e.bytes, Created: true}
	s.mu.Unlock()
	if s.met != nil {
		s.met.puts.Inc()
	}
	return info, nil
}

// Get resolves fp to a pinned Handle, or (nil, ErrNotFound). The caller
// must Release the handle; until then the matrix cannot be evicted.
func (s *Store) Get(fp sparse.Fingerprint) (*Handle, error) {
	s.mu.Lock()
	e, ok := s.entries[fp]
	if !ok {
		s.mu.Unlock()
		if s.met != nil {
			s.met.misses.Inc()
		}
		return nil, ErrNotFound
	}
	e.refs++
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	if s.met != nil {
		s.met.hits.Inc()
	}
	return &Handle{s: s, e: e}, nil
}

// Contains reports whether fp is resident without touching LRU order or
// refcounts (stats endpoints, tests).
func (s *Store) Contains(fp sparse.Fingerprint) bool {
	s.mu.Lock()
	_, ok := s.entries[fp]
	s.mu.Unlock()
	return ok
}

// Stats is a point-in-time snapshot of the store occupancy.
type Stats struct {
	Matrices int   `json:"matrices"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// Stats snapshots the current occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Matrices: s.lru.Len(), Bytes: s.bytes, MaxBytes: s.cfg.MaxBytes}
}

// evictLocked trims unpinned LRU-tail entries until the byte budget holds.
// Pinned entries are skipped, not deferred: if everything resident is
// pinned the store overshoots its budget rather than reclaiming a matrix in
// use — Release re-trims once pins drop. Called with s.mu held.
func (s *Store) evictLocked() {
	if s.cfg.MaxBytes < 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.bytes > s.cfg.MaxBytes; {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.refs == 0 {
			s.lru.Remove(el)
			delete(s.entries, e.fp)
			s.bytes -= e.bytes
			if s.met != nil {
				s.met.evictions.Inc()
			}
		}
		el = prev
	}
}

// Handle pins one stored matrix. The matrix it exposes is immutable and
// shared — callers must treat it as read-only (plans do: kernels never
// write to A).
type Handle struct {
	s *Store
	e *entry

	mu       sync.Mutex
	released bool
}

// Matrix returns the pinned matrix. The returned CSC (and its arrays) stays
// valid even after Release — Go's GC keeps it alive for as long as anything
// references it — but only while the handle is unreleased is it guaranteed
// still resident in the store.
func (h *Handle) Matrix() *sparse.CSC { return h.e.a }

// Fingerprint returns the pinned matrix's identity.
func (h *Handle) Fingerprint() sparse.Fingerprint { return h.e.fp }

// Release unpins the matrix. Idempotent: double releases are absorbed, so a
// refcount can never be driven negative by a confused caller. Dropping the
// last pin re-runs the byte-budget trim, since this entry may be the one
// holding the store over budget.
func (h *Handle) Release() {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return
	}
	h.released = true
	h.mu.Unlock()

	s := h.s
	s.mu.Lock()
	h.e.refs--
	if h.e.refs == 0 && s.bytes > s.cfg.MaxBytes {
		s.evictLocked()
	}
	s.mu.Unlock()
}
