package store

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"sketchsp/internal/obs"
	"sketchsp/internal/sparse"
)

// testMatrix builds a valid m×n matrix with one nonzero per column, values
// derived from tag so distinct tags give distinct fingerprints.
func testMatrix(m, n int, tag float64) *sparse.CSC {
	colPtr := make([]int, n+1)
	rowIdx := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		colPtr[j+1] = j + 1
		rowIdx[j] = j % m
		val[j] = tag + float64(j)
	}
	a, err := sparse.NewCSC(m, n, colPtr, rowIdx, val)
	if err != nil {
		panic(err)
	}
	return a
}

func TestPutGetRoundtrip(t *testing.T) {
	s := New(Config{})
	a := testMatrix(8, 6, 1)
	info, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created {
		t.Fatal("first Put must report Created")
	}
	if info.Fp != a.Fingerprint() {
		t.Fatal("Info fingerprint mismatch")
	}
	if info.Bytes != a.MemoryBytes() {
		t.Fatalf("Info bytes %d want %d", info.Bytes, a.MemoryBytes())
	}

	h, err := s.Get(info.Fp)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Fingerprint() != info.Fp {
		t.Fatal("handle fingerprint mismatch")
	}
	if h.Matrix().Fingerprint() != info.Fp {
		t.Fatal("stored matrix content differs")
	}
	// The store owns a private copy: mutating the caller's matrix after Put
	// must not reach the stored one.
	a.Val[0] = 999
	if h.Matrix().Val[0] == 999 {
		t.Fatal("Put did not deep-copy the matrix")
	}
}

func TestPutIdempotentByContent(t *testing.T) {
	s := New(Config{})
	a := testMatrix(4, 4, 2)
	first, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Put(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if second.Created {
		t.Fatal("re-upload of identical content must not create a new entry")
	}
	if first.Fp != second.Fp || first.Bytes != second.Bytes {
		t.Fatal("duplicate Put returned different Info")
	}
	if st := s.Stats(); st.Matrices != 1 {
		t.Fatalf("resident matrices = %d, want 1", st.Matrices)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(Config{})
	h, err := s.Get(sparse.Fingerprint{M: 1, N: 1, NNZ: 0, Hash: 42})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if h != nil {
		t.Fatal("missing Get must return a nil handle")
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := New(Config{})
	if _, err := s.Put(nil); err == nil {
		t.Fatal("nil matrix must be rejected")
	}
	bad := &sparse.CSC{M: 2, N: 2, ColPtr: []int{0, 5, 1}, RowIdx: []int{0}, Val: []float64{1}}
	if _, err := s.Put(bad); err == nil {
		t.Fatal("invalid matrix must be rejected")
	}
	if st := s.Stats(); st.Matrices != 0 || st.Bytes != 0 {
		t.Fatal("rejected Put must not change occupancy")
	}
}

func TestLRUEvictionUnpinnedOnly(t *testing.T) {
	one := testMatrix(8, 8, 0).MemoryBytes()
	s := New(Config{MaxBytes: 2 * one})
	a0, a1, a2 := testMatrix(8, 8, 10), testMatrix(8, 8, 20), testMatrix(8, 8, 30)

	if _, err := s.Put(a0); err != nil {
		t.Fatal(err)
	}
	h0, err := s.Get(a0.Fingerprint()) // pin the oldest
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(a2); err != nil { // over budget: must evict a1, not pinned a0
		t.Fatal(err)
	}
	if !s.Contains(a0.Fingerprint()) {
		t.Fatal("pinned matrix was evicted")
	}
	if s.Contains(a1.Fingerprint()) {
		t.Fatal("unpinned LRU matrix survived over budget")
	}
	if !s.Contains(a2.Fingerprint()) {
		t.Fatal("just-inserted matrix was evicted")
	}

	// Releasing the pin while over budget re-trims to the byte bound.
	h0.Release()
	if st := s.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("store stayed over budget after release: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestAllPinnedOvershootsThenRecovers(t *testing.T) {
	one := testMatrix(8, 8, 0).MemoryBytes()
	s := New(Config{MaxBytes: one}) // budget: a single matrix
	a0, a1 := testMatrix(8, 8, 1), testMatrix(8, 8, 2)
	if _, err := s.Put(a0); err != nil {
		t.Fatal(err)
	}
	h0, err := s.Get(a0.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(a1); err != nil {
		t.Fatal(err)
	}
	h1, err := s.Get(a1.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	// Both pinned: nothing evictable, overshoot tolerated.
	if st := s.Stats(); st.Matrices != 2 {
		t.Fatalf("pinned matrices evicted: %d resident", st.Matrices)
	}
	h0.Release()
	h1.Release()
	if st := s.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("budget not restored after releases: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := New(Config{})
	a := testMatrix(3, 3, 5)
	info, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Get(info.Fp)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // must not drive refs negative
	h2, err := s.Get(info.Fp)
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
}

func TestPutOwnedSkipsCopy(t *testing.T) {
	s := New(Config{})
	a := testMatrix(4, 4, 9)
	info, err := s.PutOwned(a)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Get(info.Fp)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Matrix() != a {
		t.Fatal("PutOwned must store the caller's matrix without copying")
	}
}

// TestStoreRaceHammer is the concurrent PUT / Get / eviction property
// suite: under a tiny byte budget and constant churn, (1) a pinned matrix
// is always resolvable and byte-identical, (2) accounting never goes
// negative, and (3) no operation races another (run under -race).
func TestStoreRaceHammer(t *testing.T) {
	reg := obs.NewRegistry()
	one := testMatrix(16, 16, 0).MemoryBytes()
	s := New(Config{MaxBytes: 3 * one, Metrics: reg})

	const workers = 8
	const iters = 400
	mats := make([]*sparse.CSC, 12)
	for i := range mats {
		mats[i] = testMatrix(16, 16, float64(100*i))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := mats[rnd.Intn(len(mats))]
				fp := a.Fingerprint()
				switch rnd.Intn(3) {
				case 0:
					if _, err := s.Put(a); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					h, err := s.Get(fp)
					if errors.Is(err, ErrNotFound) {
						continue // evicted or not yet uploaded: legal
					}
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					// While pinned, the content must stay resolvable and
					// intact even as other workers churn the LRU.
					if h.Matrix().Fingerprint() != fp {
						t.Error("pinned matrix content changed under churn")
						h.Release()
						return
					}
					if !s.Contains(fp) {
						t.Error("pinned matrix evicted from the map")
						h.Release()
						return
					}
					h.Release()
				case 2:
					if st := s.Stats(); st.Bytes < 0 || st.Matrices < 0 {
						t.Errorf("negative accounting: %+v", st)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	if st := s.Stats(); st.Bytes < 0 {
		t.Fatalf("final bytes negative: %d", st.Bytes)
	}
	// With every handle released, the budget must hold again.
	if st := s.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("over budget at rest: %d > %d", st.Bytes, st.MaxBytes)
	}
}
