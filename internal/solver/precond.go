package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/lsqr"
	"sketchsp/internal/sparse"
)

// This file splits a SAP solve into its two stages — build the
// preconditioner (sketch + dense factorization), then run preconditioned
// LSQR — so callers that solve against the same matrix repeatedly (the
// service layer's /v1/solve) can cache the first stage and replay only the
// second. Both stages are deterministic: replaying SolvePrecond with a
// cached Precond is bit-identical to the corresponding one-shot Solve*.

// SketchFunc computes Â = S·A for the preconditioner build. The service
// layer injects one that routes through its fingerprint-keyed plan cache;
// nil selects the direct planner path. Implementations must be
// bit-identical to core.NewPlan + Execute for the same (a, d, o) — the
// plan-cache surface already guarantees this.
type SketchFunc func(ctx context.Context, a *sparse.CSC, d int, o core.Options) (*dense.Matrix, time.Duration, error)

// SAPSketchDim returns the sketch size of a SAP solve on a tall m×n
// matrix: d = ⌈γ·n⌉ clamped to at least n+1.
func SAPSketchDim(n int, opts Options) int {
	d := int(math.Ceil(opts.gamma() * float64(n)))
	if d < n+1 {
		d = n + 1
	}
	return d
}

// MinNormSketchDim returns the sketch size of the min-norm pipeline on a
// wide m×n matrix (the transpose is sketched): d = ⌈γ·m⌉, at least m+1.
func MinNormSketchDim(m int, opts Options) int {
	d := int(math.Ceil(opts.gamma() * float64(m)))
	if d < m+1 {
		d = m + 1
	}
	return d
}

// Precond is the reusable product of a SAP preconditioner build: the R
// factor (SAP-QR, min-norm) or the V/Σ pair (SAP-SVD), plus the build
// timings so a solve served from a cache can still report Table IX's
// sketch/factor columns. A Precond is immutable after construction and
// safe for concurrent SolvePrecond calls.
type Precond struct {
	// Method is the family the factors belong to: MethodSAPQR,
	// MethodSAPSVD or MethodMinNorm.
	Method Method
	// R is the d×n upper-triangular factor (SAP-QR; m×m for min-norm).
	R *dense.Matrix
	// V and Sigma are the SVD factors (SAP-SVD).
	V     *dense.Matrix
	Sigma []float64
	// SketchBytes is the footprint of the sketch Â consumed by the build,
	// charged to Info.MemoryBytes exactly as the one-shot solvers do.
	SketchBytes int64
	// SketchTime and FactorTime are the build-stage costs.
	SketchTime time.Duration
	FactorTime time.Duration
}

// FactorBytes is the resident footprint of the factors themselves — what a
// preconditioner cache holds.
func (p *Precond) FactorBytes() int64 {
	var b int64
	if p.R != nil {
		b += p.R.MemoryBytes()
	}
	if p.V != nil {
		b += p.V.MemoryBytes()
	}
	b += int64(len(p.Sigma)) * 8
	return b
}

// MemoryBytes is the solve-workspace charge: sketch plus factors, matching
// the one-shot solvers' Info.MemoryBytes convention.
func (p *Precond) MemoryBytes() int64 { return p.SketchBytes + p.FactorBytes() }

// lsqrOptions maps solver options to LSQR options, wiring the progress
// callback and, when ctx is cancellable, the per-iteration interrupt poll.
func (o *Options) lsqrOptions(ctx context.Context) lsqr.Options {
	lo := lsqr.Options{Atol: o.Atol, MaxIters: o.MaxIters, Progress: o.Progress}
	if ctx != nil && ctx.Done() != nil {
		lo.Interrupt = ctx.Err
	}
	return lo
}

// defaultSketch is the SketchFunc used when the caller does not supply
// one: a fresh plan per build, executed under ctx. Bit-identical to
// sketchWithPlan (Execute is ExecuteContext with a background context).
func defaultSketch(ctx context.Context, a *sparse.CSC, d int, o core.Options) (*dense.Matrix, time.Duration, error) {
	t0 := time.Now()
	p, err := core.NewPlan(a, d, o)
	if err != nil {
		return nil, 0, err
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	if _, err := p.ExecuteContext(ctx, ahat); err != nil {
		return nil, 0, err
	}
	return ahat, time.Since(t0), nil
}

// BuildPrecond builds the preconditioner stage of a SAP solve for
// MethodSAPQR, MethodSAPSVD or MethodMinNorm (which sketches Aᵀ).
// MethodLSQRD and MethodDirect have no cacheable preconditioner and are
// rejected.
func BuildPrecond(ctx context.Context, method Method, a *sparse.CSC, opts Options) (*Precond, error) {
	return BuildPrecondSketch(ctx, method, a, opts, nil)
}

// BuildPrecondSketch is BuildPrecond with an injected sketch routine (nil
// selects the direct planner path). For MethodMinNorm the sketch function
// receives Aᵀ, not A.
func BuildPrecondSketch(ctx context.Context, method Method, a *sparse.CSC, opts Options, sketch SketchFunc) (*Precond, error) {
	if sketch == nil {
		sketch = defaultSketch
	}
	switch method {
	case MethodSAPQR, MethodSAPSVD:
		d := SAPSketchDim(a.N, opts)
		ahat, skTime, err := sketch(ctx, a, d, opts.Sketch)
		if err != nil {
			return nil, err
		}
		p := &Precond{Method: method, SketchBytes: ahat.MemoryBytes(), SketchTime: skTime}
		t0 := time.Now()
		if method == MethodSAPQR {
			qr := linalg.NewQRBlocked(ahat)
			p.R = qr.R()
			p.FactorTime = time.Since(t0)
			if qr.RDiagMin() == 0 {
				return nil, fmt.Errorf("solver: sketch is numerically rank deficient; use SAP-SVD")
			}
		} else {
			svd := linalg.NewSVD(ahat, 0)
			p.V, p.Sigma = svd.V, svd.Sigma
			p.FactorTime = time.Since(t0)
		}
		return p, nil
	case MethodMinNorm:
		if a.M > a.N {
			return nil, fmt.Errorf("solver: SolveMinNorm wants a wide matrix, got %dx%d (use SolveSAPQR)", a.M, a.N)
		}
		at := a.Transpose() // tall n×m
		d := MinNormSketchDim(a.M, opts)
		ahat, skTime, err := sketch(ctx, at, d, opts.Sketch)
		if err != nil {
			return nil, err
		}
		p := &Precond{Method: MethodMinNorm, SketchBytes: ahat.MemoryBytes(), SketchTime: skTime}
		t0 := time.Now()
		qr := linalg.NewQRBlocked(ahat)
		p.R = qr.R()
		p.FactorTime = time.Since(t0)
		if qr.RDiagMin() == 0 {
			return nil, fmt.Errorf("solver: Aᵀ sketch is numerically rank deficient; A is not full row rank")
		}
		return p, nil
	default:
		return nil, fmt.Errorf("solver: %v has no cacheable preconditioner", method)
	}
}

// SolvePrecond runs the iterative stage of a SAP solve against a prebuilt
// preconditioner. Info carries the build's sketch/factor timings from p;
// Info.Total covers only this call (callers composing a full solve
// overwrite it). Bit-identical to the corresponding one-shot solver for
// the same (a, b, opts) and an identically-built p, which is what makes
// preconditioner caching transparent.
func SolvePrecond(ctx context.Context, a *sparse.CSC, b []float64, p *Precond, opts Options) ([]float64, Info, error) {
	info := Info{Method: p.Method, SketchTime: p.SketchTime, FactorTime: p.FactorTime}
	start := time.Now()
	lo := opts.lsqrOptions(ctx)
	var res lsqr.Result
	var err error
	t0 := time.Now()
	switch p.Method {
	case MethodSAPQR:
		lo.Precond = lsqr.UpperTriangular{R: p.R}
		res, err = lsqr.Solve(a, b, lo)
	case MethodSAPSVD:
		drop := opts.SVDDrop
		if drop == 0 {
			drop = 1e-12
		}
		lo.Precond = lsqr.SigmaV{V: p.V, Sigma: p.Sigma, Drop: drop}
		res, err = lsqr.Solve(a, b, lo)
	case MethodMinNorm:
		if len(b) != a.M {
			return nil, info, fmt.Errorf("solver: len(b)=%d, want m=%d", len(b), a.M)
		}
		// Left-preconditioned right-hand side: R⁻ᵀ·b.
		rhs := append([]float64(nil), b...)
		dense.TrsvUpperT(p.R, rhs)
		res, err = lsqr.SolveOp(&leftPrecondOp{a: a, r: p.R}, rhs, lo)
	default:
		return nil, info, fmt.Errorf("solver: SolvePrecond: unsupported method %v", p.Method)
	}
	info.IterTime = time.Since(t0)
	if err != nil {
		return nil, info, err
	}
	info.Iters = res.Iters
	info.Converged = res.Converged
	info.MemoryBytes = p.MemoryBytes()
	info.Total = time.Since(start)
	return res.X, info, nil
}
