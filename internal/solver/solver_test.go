package solver

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// paperRHS builds b the way the paper does (§V-C): a random vector in
// range(A) plus Gaussian noise.
func paperRHS(a *sparse.CSC, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, a.M)
	a.MulVec(x, b)
	for i := range b {
		b[i] += r.NormFloat64()
	}
	return b
}

func wellConditioned(seed int64, m, n int) *sparse.CSC {
	return sparse.FixedRowNNZ(m, n, 6, seed)
}

// illConditioned builds an interval set-cover matrix (the rail structure):
// its conditioning grows with n and survives diagonal column equilibration,
// so LSQR-D genuinely struggles while SAP does not — the Table IX regime.
func illConditioned(seed int64, m, n int) *sparse.CSC {
	return sparse.Intervals(m, n, m/10, seed)
}

func opts() Options {
	return Options{Sketch: core.Options{Seed: 7, Dist: rng.Uniform11, Workers: 1}}
}

func TestAllMethodsAgreeOnWellConditioned(t *testing.T) {
	a := wellConditioned(1, 400, 20)
	b := paperRHS(a, 2)
	var sols [][]float64
	for _, m := range []Method{MethodSAPQR, MethodSAPSVD, MethodLSQRD, MethodDirect} {
		x, info, err := Solve(m, a, b, opts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !info.Converged {
			t.Fatalf("%v did not converge (%d iters)", m, info.Iters)
		}
		sols = append(sols, x)
	}
	for k := 1; k < len(sols); k++ {
		for i := range sols[0] {
			if math.Abs(sols[k][i]-sols[0][i]) > 1e-7*math.Max(1, math.Abs(sols[0][i])) {
				t.Fatalf("method %d disagrees at x[%d]: %g vs %g", k, i, sols[k][i], sols[0][i])
			}
		}
	}
}

func TestErrorMetricNearTolerance(t *testing.T) {
	// Table X: all solvers land near the 1e-14 stopping regime.
	a := illConditioned(3, 600, 25)
	b := paperRHS(a, 4)
	for _, m := range []Method{MethodSAPQR, MethodLSQRD, MethodDirect} {
		x, _, err := Solve(m, a, b, opts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		e := ErrorMetric(a, x, b)
		if e > 1e-10 {
			t.Fatalf("%v error metric %g, want ≲1e-10", m, e)
		}
	}
}

// The headline SAP behaviour (Table IX): on an ill-conditioned problem, the
// preconditioned iteration count is small and essentially
// condition-independent, while LSQR-D grows with conditioning.
func TestSAPIterationCountSmallAndStable(t *testing.T) {
	// As n grows the interval matrix gets worse conditioned: LSQR-D's
	// iteration count must grow while SAP's stays bounded (Table IX).
	var sapIters, lsqrdIters []int
	for _, n := range []int{30, 60, 120} {
		a := illConditioned(5, 30*n, n)
		b := paperRHS(a, 6)
		_, infoSAP, err := SolveSAPQR(a, b, opts())
		if err != nil {
			t.Fatal(err)
		}
		if !infoSAP.Converged {
			t.Fatalf("SAP-QR not converged at n=%d", n)
		}
		sapIters = append(sapIters, infoSAP.Iters)

		_, infoD, err := SolveLSQRD(a, b, opts())
		if err != nil {
			t.Fatal(err)
		}
		lsqrdIters = append(lsqrdIters, infoD.Iters)
	}
	for _, it := range sapIters {
		if it > 200 {
			t.Fatalf("SAP iteration counts %v not small", sapIters)
		}
	}
	if lsqrdIters[2] <= lsqrdIters[0] {
		t.Fatalf("LSQR-D iters %v did not grow with conditioning", lsqrdIters)
	}
	if lsqrdIters[2] <= 2*sapIters[2] {
		t.Fatalf("at the worst conditioning LSQR-D (%d) should need ≫ SAP (%d) iterations",
			lsqrdIters[2], sapIters[2])
	}
}

func TestSAPSVDHandlesNearRankDeficiency(t *testing.T) {
	// Duplicate columns with 1e-14 perturbations: SAP-QR's R becomes
	// unusable, SAP-SVD must still produce a finite, accurate solution.
	base := wellConditioned(7, 300, 10)
	coo := sparse.NewCOO(300, 12, base.NNZ()*2)
	for j := 0; j < 10; j++ {
		rows, vals := base.ColView(j)
		for k, r := range rows {
			coo.Append(r, j, vals[k])
		}
	}
	r := rand.New(rand.NewSource(8))
	for t2 := 0; t2 < 2; t2++ {
		rows, vals := base.ColView(t2)
		for k, rr := range rows {
			coo.Append(rr, 10+t2, vals[k]*(1+1e-14*r.NormFloat64()))
		}
	}
	a := coo.ToCSC()
	b := paperRHS(a, 9)
	x, info, err := SolveSAPSVD(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatal("SAP-SVD did not converge on near-rank-deficient input")
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
	// Residual optimality over the retained space is what matters; since
	// the problem is consistent-ish, just check the error metric is tiny.
	if e := ErrorMetric(a, x, b); e > 1e-8 {
		t.Fatalf("SAP-SVD error metric %g", e)
	}
}

// Table XI's shape: SAP workspace ≪ direct-solver workspace, and the direct
// factors dwarf mem(A) on fill-heavy problems.
func TestMemoryFootprintOrdering(t *testing.T) {
	a := wellConditioned(10, 2000, 40)
	b := paperRHS(a, 11)
	_, infoSAP, err := SolveSAPQR(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	_, infoDir, err := SolveDirect(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	_, infoD, err := SolveLSQRD(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if infoSAP.MemoryBytes >= infoDir.MemoryBytes {
		t.Fatalf("SAP %d B not below direct %d B", infoSAP.MemoryBytes, infoDir.MemoryBytes)
	}
	if infoD.MemoryBytes >= infoSAP.MemoryBytes {
		t.Fatalf("LSQR-D %d B not below SAP %d B", infoD.MemoryBytes, infoSAP.MemoryBytes)
	}
	// SAP's footprint is predictable: ≈ (γ·n + n)·n·8.
	n := int64(40)
	predicted := (2*n+1)*n*8 + n*n*8
	if infoSAP.MemoryBytes > 2*predicted {
		t.Fatalf("SAP memory %d far above prediction %d", infoSAP.MemoryBytes, predicted)
	}
}

func TestInfoTimingsPopulated(t *testing.T) {
	a := wellConditioned(13, 500, 25)
	b := paperRHS(a, 14)
	_, info, err := SolveSAPQR(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if info.SketchTime <= 0 || info.FactorTime <= 0 || info.IterTime <= 0 {
		t.Fatalf("missing phase timings: %+v", info)
	}
	if info.Total < info.SketchTime+info.FactorTime {
		t.Fatal("total below phase sum")
	}
}

func TestErrorMetricExactSolve(t *testing.T) {
	a := wellConditioned(15, 100, 8)
	r := rand.New(rand.NewSource(16))
	x := make([]float64, 8)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, 100)
	a.MulVec(x, b)
	if e := ErrorMetric(a, x, b); e != 0 {
		t.Fatalf("exact solution has error metric %g", e)
	}
}

func TestSolveUnknownMethod(t *testing.T) {
	a := wellConditioned(17, 50, 5)
	if _, _, err := Solve(Method(99), a, make([]float64, 50), opts()); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range []Method{MethodSAPQR, MethodSAPSVD, MethodLSQRD, MethodDirect} {
		if m.String() == "" {
			t.Errorf("empty name for method %d", int(m))
		}
	}
}

func TestGammaControlsSketchSize(t *testing.T) {
	a := wellConditioned(18, 300, 20)
	b := paperRHS(a, 19)
	o := opts()
	o.Gamma = 3
	_, info3, err := SolveSAPQR(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Gamma = 2
	_, info2, err := SolveSAPQR(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	if info3.MemoryBytes <= info2.MemoryBytes {
		t.Fatal("larger gamma did not increase sketch memory")
	}
	// Larger γ → smaller distortion → no more iterations (typically fewer).
	if info3.Iters > info2.Iters+10 {
		t.Fatalf("γ=3 took %d iters vs γ=2's %d", info3.Iters, info2.Iters)
	}
}

func TestSolveMinNormConsistent(t *testing.T) {
	// Wide consistent system: compare against the explicit pseudoinverse
	// solution x = Aᵀ(AAᵀ)⁻¹b on a small instance.
	m, n := 30, 200
	at := sparse.FixedRowNNZ(n, m, 5, 21) // tall n×m, then transpose to wide
	a := at.Transpose()
	r := rand.New(rand.NewSource(22))
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, info, err := SolveMinNorm(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatalf("not converged in %d iters", info.Iters)
	}
	// Feasibility: Ax = b.
	ax := make([]float64, m)
	a.MulVec(x, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-8*math.Max(1, math.Abs(b[i])) {
			t.Fatalf("Ax≠b at %d: %g vs %g", i, ax[i], b[i])
		}
	}
	// Minimality: x ⟂ null(A), i.e. x ∈ range(Aᵀ). Verify against the
	// dense normal-equations solution.
	ad := a.ToDense()
	aat := dense.NewMatrix(m, m)
	dense.Gemm(1, ad, ad.Transpose(), 0, aat)
	y := linalg.NewQR(aat).Solve(b)
	want := make([]float64, n)
	dense.GemvT(1, ad, y, 0, want)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, min-norm solution is %g", i, x[i], want[i])
		}
	}
}

func TestSolveMinNormFastConvergence(t *testing.T) {
	// The entire point: the sketch preconditioner makes the iteration
	// count O(1) even when AAᵀ is ill-conditioned.
	at := sparse.Intervals(3000, 60, 300, 23) // tall with growing cond
	a := at.Transpose()
	r := rand.New(rand.NewSource(24))
	b := make([]float64, a.M)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, info, err := SolveMinNorm(a, b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged || info.Iters > 150 {
		t.Fatalf("min-norm took %d iterations (converged=%v)", info.Iters, info.Converged)
	}
	ax := make([]float64, a.M)
	a.MulVec(x, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-6*math.Max(1, math.Abs(b[i])) {
			t.Fatalf("residual too large at %d", i)
		}
	}
}

func TestSolveMinNormRejectsTall(t *testing.T) {
	a := sparse.FixedRowNNZ(50, 5, 2, 25)
	if _, _, err := SolveMinNorm(a, make([]float64, 50), opts()); err == nil {
		t.Fatal("tall matrix accepted")
	}
}

func TestSolveMinNormRHSLength(t *testing.T) {
	a := sparse.FixedRowNNZ(200, 20, 4, 26).Transpose()
	if _, _, err := SolveMinNorm(a, make([]float64, 3), opts()); err == nil {
		t.Fatal("bad rhs length accepted")
	}
}

func TestSAPQRRejectsRankDeficient(t *testing.T) {
	// Exactly duplicated columns: the sketch is rank deficient and SAP-QR
	// must refuse with a pointer to SAP-SVD rather than dividing by ~0.
	coo := sparse.NewCOO(100, 4, 0)
	base := wellConditioned(41, 100, 2)
	for j := 0; j < 2; j++ {
		rows, vals := base.ColView(j)
		for k, r := range rows {
			coo.Append(r, j, vals[k])
			coo.Append(r, j+2, vals[k]) // identical copy
		}
	}
	a := coo.ToCSC()
	_, _, err := SolveSAPQR(a, make([]float64, 100), opts())
	if err == nil {
		t.Skip("sketch rounding kept R nonsingular; acceptable")
	}
	if !strings.Contains(err.Error(), "SAP-SVD") {
		t.Fatalf("error %q should point at SAP-SVD", err)
	}
}
