package solver

import (
	"fmt"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/sparse"
	"sketchsp/internal/sparseqr"
)

// Distortion measures the effective distortion of the sketching operator S
// (drawn per opts, d rows) for range(A): the smallest D with
// (1−D)‖x‖ ≤ ‖S·x‖ ≤ (1+D)‖x‖ for all x in range(A). It factors A = Q·R
// with the sparse QR, whitens the sketch Â·R⁻¹ = S·Q, and reads D off the
// extreme singular values. This is the sketch-quality measure the paper
// cites when arguing that cheap distributions and block-checkpointed
// xoshiro still produce usable sketches (§IV-B).
func Distortion(a *sparse.CSC, d int, opts core.Options) (float64, error) {
	f, err := sparseqr.Factorize(a, make([]float64, a.M))
	if err != nil {
		return 0, err
	}
	r := f.RDense()
	for j := 0; j < a.N; j++ {
		if r.At(j, j) == 0 {
			return 0, fmt.Errorf("solver: A is structurally rank deficient; distortion undefined")
		}
	}
	ahat, _, err := sketchWithPlan(a, d, opts)
	if err != nil {
		return 0, err
	}
	// W = Â·R⁻¹ by forward substitution over columns: column j of Â is
	// Σ_{k≤j} W[:,k]·R[k,j].
	w := dense.NewMatrix(d, a.N)
	for j := 0; j < a.N; j++ {
		col := w.Col(j)
		copy(col, ahat.Col(j))
		for k := 0; k < j; k++ {
			dense.Axpy(-r.At(k, j), w.Col(k), col)
		}
		dense.Scal(1/r.At(j, j), col)
	}
	svd := linalg.NewSVD(w, 0)
	smax := svd.Sigma[0]
	smin := svd.Sigma[len(svd.Sigma)-1]
	if smax+smin == 0 {
		return 1, nil
	}
	// Effective distortion under the optimal rescaling of S (the sketch's
	// overall scale is irrelevant to preconditioning): the smallest D with
	// σ(S·Q) ⊆ c·[1−D, 1+D] for some c > 0, i.e. (σmax−σmin)/(σmax+σmin).
	// For a Gaussian sketch with d = γ·n this converges to 1/√γ (§V).
	return (smax - smin) / (smax + smin), nil
}
