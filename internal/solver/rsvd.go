package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// The paper motivates its kernel with the randomized-algorithms ecosystem
// (§I: "randomized algorithms for linear regression, low-rank
// approximation, matrix decomposition, eigenvalue computation"). This file
// builds two of those consumers directly on the sketching engine, so the
// repository demonstrates the primitive in the roles the introduction
// promises, not just in least squares.

// RSVDResult is a rank-k approximation A ≈ U·diag(Sigma)·Vᵀ.
type RSVDResult struct {
	// U is m×k with orthonormal columns.
	U *dense.Matrix
	// Sigma holds the k approximate singular values, descending.
	Sigma []float64
	// V is n×k with orthonormal columns.
	V *dense.Matrix
	// SketchTime and Total break down the cost.
	SketchTime time.Duration
	Total      time.Duration
}

// RandSVD computes a rank-k randomized SVD of a sparse matrix
// (Halko–Martinsson–Tropp structure) with the paper's on-the-fly sketching
// as the range finder: the sample matrix Y = A·Ωᵀ is computed as
// (Sketch of Aᵀ)ᵀ, so the n×(k+p) random matrix Ω is never materialised.
// powerIters > 0 adds subspace (power) iterations for spectra with slow
// decay; oversample p defaults to 8.
func RandSVD(a *sparse.CSC, rank, oversample, powerIters int, opts core.Options) (*RSVDResult, error) {
	return RandSVDContext(context.Background(), a, rank, oversample, powerIters, opts)
}

// RandSVDContext is RandSVD with cancellation: ctx aborts the range-finder
// sketch between kernel tasks and is polled between power iterations and
// before the final dense factorization. Bit-identical to RandSVD when ctx
// never fires.
func RandSVDContext(ctx context.Context, a *sparse.CSC, rank, oversample, powerIters int, opts core.Options) (*RSVDResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("solver: RandSVD rank=%d must be positive", rank)
	}
	if oversample <= 0 {
		oversample = 8
	}
	k := rank + oversample
	minDim := a.M
	if a.N < minDim {
		minDim = a.N
	}
	if k > minDim {
		k = minDim
	}
	if rank > k {
		rank = k
	}
	start := time.Now()

	// Range finder: Yᵀ = Ω·Aᵀ is a k-row sketch of Aᵀ — exactly the
	// paper's kernel with d = k and the n×m transpose as input; the k×n
	// random matrix Ω is S itself, generated on the fly.
	at := a.Transpose() // n×m
	// k×m sketch of Aᵀ: rows span the row space of Aᵀ = column space of A.
	yt, sketchTime, err := defaultSketch(ctx, at, k, opts)
	if err != nil {
		return nil, err
	}
	y := yt.Transpose() // m×k sample matrix Y = A·Ωᵀ

	// Optional power iterations: Y ← A·(Aᵀ·Y), re-orthonormalising each
	// pass for stability.
	for q := 0; q < powerIters; q++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		y = orthonormalColumns(y)
		z := dense.NewMatrix(a.N, y.Cols) // Z = Aᵀ·Y
		for c := 0; c < y.Cols; c++ {
			a.MulVecT(y.Col(c), z.Col(c))
		}
		y = dense.NewMatrix(a.M, z.Cols) // Y = A·Z
		for c := 0; c < z.Cols; c++ {
			a.MulVec(z.Col(c), y.Col(c))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := orthonormalColumns(y) // m×k orthonormal basis of the sample space

	// B = Qᵀ·A (k×n), computed as (Aᵀ·Q)ᵀ column by column through the
	// sparse operator.
	bt := dense.NewMatrix(a.N, q.Cols)
	for c := 0; c < q.Cols; c++ {
		a.MulVecT(q.Col(c), bt.Col(c))
	}
	// SVD of Bᵀ (n×k, tall since k ≤ n … if k > n we shrank k above).
	svd := linalg.NewSVD(bt, 0)
	// Bᵀ = Ũ Σ Ṽᵀ ⇒ B = Ṽ Σ Ũᵀ ⇒ A ≈ Q·B = (Q·Ṽ)·Σ·Ũᵀ.
	u := dense.NewMatrix(a.M, rank)
	dense.Gemm(1, q, svd.V.View(0, 0, svd.V.Rows, rank), 0, u)
	v := dense.NewMatrix(a.N, rank)
	v.CopyFrom(svd.U.View(0, 0, a.N, rank))
	return &RSVDResult{
		U: u, Sigma: append([]float64(nil), svd.Sigma[:rank]...), V: v,
		SketchTime: sketchTime, Total: time.Since(start),
	}, nil
}

// orthonormalColumns returns an orthonormal basis for range(y) via
// Householder QR (thin Q, materialised by applying Q to unit columns).
func orthonormalColumns(y *dense.Matrix) *dense.Matrix {
	qr := linalg.NewQRBlocked(y)
	out := dense.NewMatrix(y.Rows, y.Cols)
	for c := 0; c < y.Cols; c++ {
		col := out.Col(c)
		col[c] = 1
		qr.ApplyQ(col)
	}
	return out
}

// Reconstruct materialises U·diag(Sigma)·Vᵀ (tests and small problems).
func (r *RSVDResult) Reconstruct() *dense.Matrix {
	us := dense.NewMatrix(r.U.Rows, r.U.Cols)
	for c := 0; c < r.U.Cols; c++ {
		copy(us.Col(c), r.U.Col(c))
		dense.Scal(r.Sigma[c], us.Col(c))
	}
	out := dense.NewMatrix(r.U.Rows, r.V.Rows)
	dense.Gemm(1, us, r.V.Transpose(), 0, out)
	return out
}

// LeverageScores estimates the row leverage scores of a tall sparse matrix
// (the statistic pylspack [13] computes with the same sketching primitive):
// ℓᵢ = ‖eᵢᵀ·U‖² for U an orthonormal basis of range(A). It follows the
// standard sketch-based recipe: factor the sketch Â = S·A = QR, whiten with
// R⁻¹ so A·R⁻¹ has nearly orthonormal columns, then JL-compress the rows
// with a small Gaussian map so each score costs O(nnz(row)·kJL):
//
//	ℓᵢ ≈ ‖Gᵀ·R⁻ᵀ·aᵢ‖²,  G an n×kJL Gaussian matrix / √kJL.
//
// kJL ≤ 0 selects 64. Scores are approximate (relative error ~1/√kJL plus
// the sketch distortion); Σᵢ ℓᵢ ≈ n exactly as for true leverage scores.
func LeverageScores(a *sparse.CSC, kJL int, opts Options) ([]float64, error) {
	if a.M < a.N {
		return nil, fmt.Errorf("solver: LeverageScores wants a tall matrix, got %dx%d", a.M, a.N)
	}
	if kJL <= 0 {
		kJL = 64
	}
	d := int(math.Ceil(opts.gamma() * float64(a.N)))
	if d < a.N+1 {
		d = a.N + 1
	}
	ahat, _, err := sketchWithPlan(a, d, opts.Sketch)
	if err != nil {
		return nil, err
	}
	qr := linalg.NewQRBlocked(ahat)
	if qr.RDiagMin() == 0 {
		return nil, fmt.Errorf("solver: sketch is rank deficient; leverage scores undefined")
	}
	r := qr.R()

	// W = R⁻¹·G with G n×kJL Gaussian·√(1/kJL): then ℓᵢ ≈ ‖aᵢᵀ·W‖².
	gsk, err := core.NewSketcher(kJL, core.Options{
		Dist: opts.Sketch.Dist, Seed: opts.Sketch.Seed + 0x9E37, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	g := gsk.MaterializeS(a.N) // kJL×n
	w := dense.NewMatrix(a.N, kJL)
	scale := 1 / math.Sqrt(float64(kJL)*entryVariance(opts))
	for c := 0; c < kJL; c++ {
		col := w.Col(c)
		for i := 0; i < a.N; i++ {
			col[i] = g.At(c, i) * scale
		}
		dense.TrsvUpper(r, col)
	}
	// Scores via one pass over A in CSR: ℓᵢ = Σ_c (aᵢᵀ·w_c)². The sketch
	// is unnormalised (E‖S·x‖² = d·var·‖x‖²), so R absorbs a √(d·var)
	// factor relative to A's own R; undo it so Σℓᵢ ≈ n.
	norm := float64(d) * entryVariance(opts)
	csr := a.ToCSR()
	scores := make([]float64, a.M)
	for i := 0; i < a.M; i++ {
		cols, vals := csr.RowView(i)
		if len(cols) == 0 {
			continue
		}
		var s float64
		for c := 0; c < kJL; c++ {
			wc := w.Col(c)
			var dot float64
			for t, j := range cols {
				dot += vals[t] * wc[j]
			}
			s += dot * dot
		}
		scores[i] = s * norm
	}
	return scores, nil
}

// entryVariance returns the variance of the sketch-entry distribution so
// the JL map can be normalised to unit expected squared row norm.
func entryVariance(opts Options) float64 {
	switch opts.Sketch.Dist {
	case rng.Uniform11, rng.ScaledInt: // ScaledInt materialises as (-1,1)
		return 1.0 / 3.0
	default: // Rademacher, Gaussian: unit variance
		return 1
	}
}
