package solver

import (
	"fmt"
	"math"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/lsqr"
	"sketchsp/internal/sparse"
)

// SolveMinNorm solves the underdetermined problem
//
//	min ‖x‖₂  subject to  A·x = b
//
// for a wide full-row-rank A (m < n), implementing the "minor
// modifications" the paper's footnote 2 alludes to: sketch the TALL
// transpose, Â = S·Aᵀ (d×m with d = γ·m), factor Â = Q·R, and run LSQR on
// the LEFT-preconditioned consistent system R⁻ᵀ·A·x = R⁻ᵀ·b. Because
// cond(R⁻ᵀA) = O(1) by the sketching guarantee and LSQR's iterates stay in
// range((R⁻ᵀA)ᵀ) = range(Aᵀ), the iteration converges in O(1) steps to the
// minimum-norm solution.
func SolveMinNorm(a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	info := Info{Method: MethodSAPQR}
	if a.M > a.N {
		return nil, info, fmt.Errorf("solver: SolveMinNorm wants a wide matrix, got %dx%d (use SolveSAPQR)", a.M, a.N)
	}
	if len(b) != a.M {
		return nil, info, fmt.Errorf("solver: len(b)=%d, want m=%d", len(b), a.M)
	}
	start := time.Now()

	at := a.Transpose() // tall n×m
	d := int(math.Ceil(opts.gamma() * float64(a.M)))
	if d < a.M+1 {
		d = a.M + 1
	}
	ahat, skTime, err := sketchWithPlan(at, d, opts.Sketch)
	if err != nil {
		return nil, info, err
	}
	info.SketchTime = skTime

	t0 := time.Now()
	qr := linalg.NewQRBlocked(ahat)
	r := qr.R()
	info.FactorTime = time.Since(t0)
	if qr.RDiagMin() == 0 {
		return nil, info, fmt.Errorf("solver: Aᵀ sketch is numerically rank deficient; A is not full row rank")
	}

	// Left-preconditioned right-hand side: R⁻ᵀ·b.
	rhs := append([]float64(nil), b...)
	dense.TrsvUpperT(r, rhs)

	t0 = time.Now()
	res, err := lsqr.SolveOp(&leftPrecondOp{a: a, r: r}, rhs, lsqr.Options{
		Atol: opts.Atol, MaxIters: opts.MaxIters,
	})
	info.IterTime = time.Since(t0)
	if err != nil {
		return nil, info, err
	}
	info.Iters = res.Iters
	info.Converged = res.Converged
	info.MemoryBytes = ahat.MemoryBytes() + r.MemoryBytes()
	info.Total = time.Since(start)
	return res.X, info, nil
}

// leftPrecondOp is the operator B = R⁻ᵀ·A for a wide A and m×m
// upper-triangular R.
type leftPrecondOp struct {
	a *sparse.CSC
	r *dense.Matrix
}

// Dims returns A's dimensions (left preconditioning preserves them).
func (o *leftPrecondOp) Dims() (int, int) { return o.a.M, o.a.N }

// MulVec computes y = R⁻ᵀ·(A·x).
func (o *leftPrecondOp) MulVec(x, y []float64) {
	o.a.MulVec(x, y)
	dense.TrsvUpperT(o.r, y)
}

// MulVecT computes y = Aᵀ·(R⁻¹·x) without clobbering x.
func (o *leftPrecondOp) MulVecT(x, y []float64) {
	tmp := append([]float64(nil), x...)
	dense.TrsvUpper(o.r, tmp)
	o.a.MulVecT(tmp, y)
}
