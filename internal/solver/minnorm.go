package solver

import (
	"context"
	"fmt"
	"time"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// SolveMinNorm solves the underdetermined problem
//
//	min ‖x‖₂  subject to  A·x = b
//
// for a wide full-row-rank A (m < n), implementing the "minor
// modifications" the paper's footnote 2 alludes to: sketch the TALL
// transpose, Â = S·Aᵀ (d×m with d = γ·m), factor Â = Q·R, and run LSQR on
// the LEFT-preconditioned consistent system R⁻ᵀ·A·x = R⁻ᵀ·b. Because
// cond(R⁻ᵀA) = O(1) by the sketching guarantee and LSQR's iterates stay in
// range((R⁻ᵀA)ᵀ) = range(Aᵀ), the iteration converges in O(1) steps to the
// minimum-norm solution.
func SolveMinNorm(a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return SolveMinNormContext(context.Background(), a, b, opts)
}

// SolveMinNormContext is SolveMinNorm with cancellation between sketch
// tasks and LSQR iterations; bit-identical to SolveMinNorm when ctx never
// fires.
func SolveMinNormContext(ctx context.Context, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	info := Info{Method: MethodMinNorm}
	if len(b) != a.M {
		return nil, info, fmt.Errorf("solver: len(b)=%d, want m=%d", len(b), a.M)
	}
	start := time.Now()
	p, err := BuildPrecondSketch(ctx, MethodMinNorm, a, opts, nil)
	if err != nil {
		return nil, info, err
	}
	x, info, err := SolvePrecond(ctx, a, b, p, opts)
	if err != nil {
		return nil, info, err
	}
	info.Total = time.Since(start)
	return x, info, nil
}

// leftPrecondOp is the operator B = R⁻ᵀ·A for a wide A and m×m
// upper-triangular R.
type leftPrecondOp struct {
	a *sparse.CSC
	r *dense.Matrix
}

// Dims returns A's dimensions (left preconditioning preserves them).
func (o *leftPrecondOp) Dims() (int, int) { return o.a.M, o.a.N }

// MulVec computes y = R⁻ᵀ·(A·x).
func (o *leftPrecondOp) MulVec(x, y []float64) {
	o.a.MulVec(x, y)
	dense.TrsvUpperT(o.r, y)
}

// MulVecT computes y = Aᵀ·(R⁻¹·x) without clobbering x.
func (o *leftPrecondOp) MulVecT(x, y []float64) {
	tmp := append([]float64(nil), x...)
	dense.TrsvUpper(o.r, tmp)
	o.a.MulVecT(tmp, y)
}
