// Package solver implements the paper's three least-squares solvers
// (§V-C1): the randomized sketch-and-precondition solver (SAP, with QR or
// SVD preconditioner construction), the classical LSQR-D baseline (LSQR with
// a column-equilibration diagonal preconditioner), and a direct sparse-QR
// solver standing in for SuiteSparseQR. All three report the timing,
// iteration and workspace-memory measurements that Tables IX–XI compare.
package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/lsqr"
	"sketchsp/internal/sparse"
	"sketchsp/internal/sparseqr"
)

// Method identifies a least-squares solver.
type Method int

// The solvers compared in Tables IX–XI, plus the min-norm and RandSVD
// request modes the serving layer dispatches on.
const (
	MethodSAPQR Method = iota
	MethodSAPSVD
	MethodLSQRD
	MethodDirect
	// MethodMinNorm is the underdetermined min-‖x‖ pipeline of footnote 2
	// (SolveMinNorm): SAP-QR on Aᵀ used as a left preconditioner.
	MethodMinNorm
	// MethodRandSVD tags randomized low-rank factorization requests. It is
	// not a least-squares method: Solve rejects it, callers use RandSVD.
	MethodRandSVD
)

// String implements fmt.Stringer for Method.
func (m Method) String() string {
	switch m {
	case MethodSAPQR:
		return "SAP-QR"
	case MethodSAPSVD:
		return "SAP-SVD"
	case MethodLSQRD:
		return "LSQR-D"
	case MethodDirect:
		return "SuiteSparse-like direct"
	case MethodMinNorm:
		return "min-norm"
	case MethodRandSVD:
		return "RandSVD"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a solve.
type Options struct {
	// Gamma sets the sketch size d = ⌈Gamma·n⌉ for SAP (paper: 2).
	// 0 selects 2.
	Gamma float64
	// Sketch carries the sketching configuration (algorithm,
	// distribution, seed, workers). Block sizes of 0 use the defaults.
	Sketch core.Options
	// Atol is the LSQR stopping tolerance (paper: 1e-14); 0 selects it.
	Atol float64
	// MaxIters caps LSQR iterations; 0 selects 4·max(m,n).
	MaxIters int
	// SVDDrop is the relative singular-value truncation for SAP-SVD
	// (paper: 1e-12); 0 selects it.
	SVDDrop float64
	// Progress, when non-nil, receives LSQR's per-iteration (iteration,
	// residual-norm estimate) pairs. Purely observational: results are
	// bit-identical with or without it. Ignored by MethodDirect.
	Progress func(iter int, resid float64)
}

func (o *Options) gamma() float64 {
	if o.Gamma == 0 {
		return 2
	}
	return o.Gamma
}

// Info reports what a solve did and cost.
type Info struct {
	Method Method
	// SketchTime is the Â = S·A time (SAP only; the paper's "sketch(s)"
	// column in Table IX).
	SketchTime time.Duration
	// FactorTime is QR/SVD (SAP) or the sparse factorization (Direct).
	FactorTime time.Duration
	// IterTime is the LSQR time (iterative methods).
	IterTime time.Duration
	// Total is end-to-end wall clock.
	Total time.Duration
	// Iters is the LSQR iteration count (0 for Direct).
	Iters int
	// Converged reports LSQR convergence (always true for Direct).
	Converged bool
	// MemoryBytes is the extra workspace beyond A and b: the sketch and
	// its factors for SAP, the R fill plus stored Q for Direct,
	// essentially vectors for LSQR-D (Table XI).
	MemoryBytes int64
}

// sketchWithPlan computes Â = S·A through the planner/executor surface: one
// plan carries the AlgAuto resolution, blocking, conversion and workspaces,
// and all sketching of the solve draws on it. The returned duration covers
// plan + execute, preserving Info.SketchTime's "sketch(s)" meaning from
// Table IX.
func sketchWithPlan(a *sparse.CSC, d int, o core.Options) (*dense.Matrix, time.Duration, error) {
	t0 := time.Now()
	p, err := core.NewPlan(a, d, o)
	if err != nil {
		return nil, 0, err
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	if _, err := p.Execute(ahat); err != nil {
		return nil, 0, err
	}
	return ahat, time.Since(t0), nil
}

// ErrorMetric computes the paper's backward-error measure for a candidate
// solution: ‖Aᵀ(Ax − b)‖₂ / (‖A‖_F · ‖Ax − b‖₂). Returns 0 for an exact
// solve (zero residual).
func ErrorMetric(a *sparse.CSC, x, b []float64) float64 {
	r := make([]float64, a.M)
	a.MulVec(x, r)
	for i := range r {
		r[i] -= b[i]
	}
	rn := dense.Nrm2(r)
	if rn == 0 {
		return 0
	}
	atr := make([]float64, a.N)
	a.MulVecT(r, atr)
	return dense.Nrm2(atr) / (a.FrobeniusNorm() * rn)
}

// SolveSAPQR runs sketch-and-precondition with a QR-based preconditioner:
// Â = S·A, Â = QR, then LSQR on A·R⁻¹ (§V-C1). Intended for full-rank,
// possibly ill-conditioned problems.
func SolveSAPQR(a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return SolveSAPQRContext(context.Background(), a, b, opts)
}

// SolveSAPQRContext is SolveSAPQR with cancellation: ctx aborts both the
// sketch (between kernel tasks) and the LSQR loop (between iterations).
// Results are bit-identical to SolveSAPQR when ctx never fires.
func SolveSAPQRContext(ctx context.Context, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return solveSAP(ctx, MethodSAPQR, a, b, opts)
}

// SolveSAPSVD runs sketch-and-precondition with an SVD-based preconditioner
// V·Σ⁺ built from Â = U·Σ·Vᵀ, dropping σ ≤ σmax·SVDDrop — the paper's
// treatment for problems with singular values near zero.
func SolveSAPSVD(a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return SolveSAPSVDContext(context.Background(), a, b, opts)
}

// SolveSAPSVDContext is SolveSAPSVD with cancellation (see
// SolveSAPQRContext).
func SolveSAPSVDContext(ctx context.Context, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return solveSAP(ctx, MethodSAPSVD, a, b, opts)
}

// solveSAP composes the two stages every SAP solve shares: build the
// preconditioner (sketch + factor), then run the iterative stage. Keeping
// the stages behind BuildPrecond/SolvePrecond lets the service layer cache
// the first and replay only the second, bit-identically.
func solveSAP(ctx context.Context, method Method, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	start := time.Now()
	p, err := BuildPrecondSketch(ctx, method, a, opts, nil)
	if err != nil {
		return nil, Info{Method: method}, err
	}
	x, info, err := SolvePrecond(ctx, a, b, p, opts)
	if err != nil {
		return nil, info, err
	}
	info.Total = time.Since(start)
	return x, info, nil
}

// SolveLSQRD is the classical baseline: LSQR with the diagonal
// preconditioner D_ii = 1/‖A_i‖₂, guarded so that columns with
// ‖A_i‖ ≤ ε·√n·max_j ‖A_j‖ keep D_ii = 1 (§V-C1).
func SolveLSQRD(a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return SolveLSQRDContext(context.Background(), a, b, opts)
}

// SolveLSQRDContext is SolveLSQRD with cancellation between iterations.
func SolveLSQRDContext(ctx context.Context, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	info := Info{Method: MethodLSQRD}
	start := time.Now()
	norms := a.ColNorms()
	maxNorm := 0.0
	for _, v := range norms {
		if v > maxNorm {
			maxNorm = v
		}
	}
	guard := 0x1p-52 * math.Sqrt(float64(a.N)) * maxNorm
	dvec := make([]float64, a.N)
	for i, v := range norms {
		if v <= guard {
			dvec[i] = 1
		} else {
			dvec[i] = 1 / v
		}
	}
	t0 := time.Now()
	lo := opts.lsqrOptions(ctx)
	lo.Precond = lsqr.Diagonal{D: dvec}
	res, err := lsqr.Solve(a, b, lo)
	info.IterTime = time.Since(t0)
	if err != nil {
		return nil, info, err
	}
	info.Iters = res.Iters
	info.Converged = res.Converged
	// Workspace: just the diagonal. LSQR's own work vectors are not
	// charged — the paper uses the same convention ("LSQR-D requires
	// essentially no extra memory"), and SAP's LSQR phase is likewise
	// not charged for them.
	info.MemoryBytes = int64(a.N) * 8
	info.Total = time.Since(start)
	return res.X, info, nil
}

// SolveDirect runs the SuiteSparseQR-style direct sparse solver, with the
// mean-row column preordering standing in for SPQR's COLAMD stage so the
// baseline is not handicapped on orderable structures.
func SolveDirect(a *sparse.CSC, b []float64, _ Options) ([]float64, Info, error) {
	info := Info{Method: MethodDirect, Converged: true}
	start := time.Now()
	t0 := time.Now()
	f, err := sparseqr.FactorizeOrdered(a, b, sparseqr.OrderMeanRow)
	info.FactorTime = time.Since(t0)
	if err != nil {
		return nil, info, err
	}
	x := f.Solve()
	info.MemoryBytes = f.Stats().MemoryBytes
	info.Total = time.Since(start)
	return x, info, nil
}

// Solve dispatches on method.
func Solve(method Method, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	return SolveContext(context.Background(), method, a, b, opts)
}

// SolveContext is Solve with cancellation and progress: ctx aborts the
// sketch between kernel tasks and the LSQR loop between iterations, and
// opts.Progress observes each iteration. MethodDirect only honours ctx
// before the factorization starts (the sparse QR itself is one
// uninterruptible step). When ctx never fires, results are bit-identical
// to Solve.
func SolveContext(ctx context.Context, method Method, a *sparse.CSC, b []float64, opts Options) ([]float64, Info, error) {
	switch method {
	case MethodSAPQR:
		return SolveSAPQRContext(ctx, a, b, opts)
	case MethodSAPSVD:
		return SolveSAPSVDContext(ctx, a, b, opts)
	case MethodLSQRD:
		return SolveLSQRDContext(ctx, a, b, opts)
	case MethodMinNorm:
		return SolveMinNormContext(ctx, a, b, opts)
	case MethodDirect:
		if err := ctx.Err(); err != nil {
			return nil, Info{Method: MethodDirect}, err
		}
		return SolveDirect(a, b, opts)
	case MethodRandSVD:
		return nil, Info{Method: MethodRandSVD}, fmt.Errorf("solver: MethodRandSVD is not a least-squares method; use RandSVD")
	default:
		return nil, Info{}, fmt.Errorf("solver: unknown method %d", int(method))
	}
}
