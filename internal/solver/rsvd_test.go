package solver

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

// lowRankSparse builds a matrix that is sparse AND exactly rank ≤ r: every
// row is a random scale of one of r sparse prototype rows. (Masking a dense
// low-rank matrix would destroy the rank — the mask itself is full rank —
// so the structure must live in the sparsity pattern.)
func lowRankSparse(seed int64, m, n, r int) *sparse.CSC {
	rr := rand.New(rand.NewSource(seed))
	protoCols := make([][]int, r)
	protoVals := make([][]float64, r)
	for t := 0; t < r; t++ {
		k := 8 + rr.Intn(8)
		seen := map[int]bool{}
		for len(protoCols[t]) < k {
			j := rr.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			protoCols[t] = append(protoCols[t], j)
			protoVals[t] = append(protoVals[t], 1+rr.NormFloat64())
		}
	}
	coo := sparse.NewCOO(m, n, m*16)
	for i := 0; i < m; i++ {
		t := i % r
		scale := math.Pow(3, float64(r-t)) * (1 + 0.2*rr.NormFloat64())
		for k, j := range protoCols[t] {
			coo.Append(i, j, scale*protoVals[t][k])
		}
	}
	return coo.ToCSC()
}

func TestRandSVDRecoversSpectrum(t *testing.T) {
	a := sparse.RandomUniform(400, 60, 0.1, 81)
	rank := 10
	res, err := RandSVD(a, rank, 10, 2, core.Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := linalg.NewSVD(a.ToDense(), 0)
	for i := 0; i < rank; i++ {
		rel := math.Abs(res.Sigma[i]-full.Sigma[i]) / full.Sigma[0]
		if rel > 0.05 {
			t.Fatalf("σ[%d] = %g, full SVD %g (rel %g)", i, res.Sigma[i], full.Sigma[i], rel)
		}
	}
}

func TestRandSVDNearOptimalReconstruction(t *testing.T) {
	a := lowRankSparse(82, 300, 80, 3)
	rank := 3
	res, err := RandSVD(a, rank, 8, 2, core.Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ad := a.ToDense()
	rec := res.Reconstruct()
	errF := rec.MaxAbsDiff(ad)
	// Optimal rank-3 error from the full SVD.
	full := linalg.NewSVD(ad, 0)
	if full.Sigma[rank] > 0.2*full.Sigma[0] {
		t.Skip("test matrix not effectively low rank; generator drifted")
	}
	// Relative Frobenius error of the randomized approximation must be
	// within a small factor of σ_{r+1}/σ_1.
	var fro float64
	for j := 0; j < ad.Cols; j++ {
		for _, v := range ad.Col(j) {
			fro += v * v
		}
	}
	fro = math.Sqrt(fro)
	if errF > 3*full.Sigma[rank] && errF > 1e-8*fro {
		t.Fatalf("reconstruction max-err %g vs σ_%d = %g", errF, rank+1, full.Sigma[rank])
	}
}

func TestRandSVDOrthonormalFactors(t *testing.T) {
	a := sparse.RandomUniform(200, 40, 0.15, 83)
	res, err := RandSVD(a, 8, 6, 1, core.Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*dense.Matrix{res.U, res.V} {
		for i := 0; i < f.Cols; i++ {
			for j := i; j < f.Cols; j++ {
				d := dense.Dot(f.Col(i), f.Col(j))
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(d-want) > 1e-9 {
					t.Fatalf("factor not orthonormal at (%d,%d): %g", i, j, d)
				}
			}
		}
	}
	// Sigma descending, non-negative.
	for i := 1; i < len(res.Sigma); i++ {
		if res.Sigma[i] > res.Sigma[i-1] || res.Sigma[i] < 0 {
			t.Fatalf("sigma not sorted non-negative: %v", res.Sigma)
		}
	}
}

func TestRandSVDArgumentHandling(t *testing.T) {
	a := sparse.RandomUniform(30, 10, 0.3, 84)
	if _, err := RandSVD(a, 0, 4, 0, core.Options{Workers: 1}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	// Rank larger than min dimension clamps rather than failing.
	res, err := RandSVD(a, 50, 4, 0, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sigma) > 10 {
		t.Fatalf("rank not clamped: %d", len(res.Sigma))
	}
}

func TestLeverageScoresAgainstExact(t *testing.T) {
	a := sparse.Intervals(800, 30, 60, 85)
	got, err := LeverageScores(a, 256, Options{
		Gamma:  4,
		Sketch: core.Options{Seed: 9, Dist: rng.Rademacher, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact scores from the dense QR's thin Q.
	ad := a.ToDense()
	qr := linalg.NewQR(ad)
	exact := make([]float64, a.M)
	for c := 0; c < a.N; c++ {
		col := make([]float64, a.M)
		col[c] = 1
		qr.ApplyQ(col)
		for i := range col {
			exact[i] += col[i] * col[i]
		}
	}
	// Sum ≈ n for both.
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum < float64(a.N)/3 || sum > float64(a.N)*3 {
		t.Fatalf("Σℓ = %g, want ≈ n = %d", sum, a.N)
	}
	// The estimates track the exact scores within the constant-factor
	// guarantee of a γ=4 sketch + JL: check correlation via top-decile
	// overlap.
	top := func(v []float64) map[int]bool {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
		out := make(map[int]bool)
		for _, i := range idx[:len(idx)/10] {
			out[i] = true
		}
		return out
	}
	te, tg := top(exact), top(got)
	overlap := 0
	for i := range te {
		if tg[i] {
			overlap++
		}
	}
	if float64(overlap) < 0.6*float64(len(te)) {
		t.Fatalf("top-decile overlap %d/%d too low", overlap, len(te))
	}
	// Nonzero rows get nonzero scores; empty rows get zero.
	csr := a.ToCSR()
	for i := 0; i < a.M; i++ {
		empty := csr.RowPtr[i+1] == csr.RowPtr[i]
		if empty && got[i] != 0 {
			t.Fatalf("empty row %d scored %g", i, got[i])
		}
		if !empty && got[i] < 0 {
			t.Fatalf("negative score %g", got[i])
		}
	}
}

func TestLeverageScoresRejectsWide(t *testing.T) {
	a := sparse.RandomUniform(5, 20, 0.4, 86)
	if _, err := LeverageScores(a, 16, opts()); err == nil {
		t.Fatal("wide matrix accepted")
	}
}
