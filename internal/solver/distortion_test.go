package solver

import (
	"math"
	"testing"

	"sketchsp/internal/core"
	"sketchsp/internal/rng"
	"sketchsp/internal/sparse"
)

func TestDistortionConvergesToTheory(t *testing.T) {
	// Effective distortion → 1/√γ as n grows (§V); check γ = 2, 3, 4 land
	// near theory on a moderately sized problem.
	a := sparse.RandomUniform(3000, 80, 0.05, 71)
	for _, gamma := range []int{2, 3, 4} {
		dd, err := Distortion(a, gamma*a.N, core.Options{Seed: 3, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / math.Sqrt(float64(gamma))
		if math.Abs(dd-want) > 0.3*want {
			t.Fatalf("gamma=%d: distortion %g, theory %g", gamma, dd, want)
		}
	}
}

func TestDistortionOrderedInGamma(t *testing.T) {
	a := sparse.RandomUniform(2000, 60, 0.06, 72)
	d2, err := Distortion(a, 2*a.N, core.Options{Seed: 5, Workers: 1, Dist: rng.Rademacher})
	if err != nil {
		t.Fatal(err)
	}
	d6, err := Distortion(a, 6*a.N, core.Options{Seed: 5, Workers: 1, Dist: rng.Rademacher})
	if err != nil {
		t.Fatal(err)
	}
	if d6 >= d2 {
		t.Fatalf("distortion did not shrink with gamma: %g vs %g", d6, d2)
	}
}

func TestDistortionRankDeficientRejected(t *testing.T) {
	// A matrix with an empty column has no well-defined distortion.
	coo := sparse.NewCOO(20, 3, 2)
	coo.Append(0, 0, 1)
	coo.Append(5, 2, 1)
	if _, err := Distortion(coo.ToCSC(), 9, core.Options{Workers: 1}); err == nil {
		t.Fatal("structurally rank-deficient matrix accepted")
	}
}
