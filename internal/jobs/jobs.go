// Package jobs is the bounded async job manager behind the server's
// POST /v1/solve: multi-second solver requests are admitted into a
// fixed-capacity queue, executed by a small worker pool with a per-job
// cancellable context, observable while running (iteration/residual
// progress from the solver's callback), and retained after completion
// under both a TTL and a byte budget so finished solutions can be fetched
// with GET /v1/jobs/{id} without the result store growing without bound.
//
// The manager is deliberately generic — a job is just a Run closure
// returning (result, retainedBytes, error) — so tests and future
// long-running endpoints (bulk sketches, matrix imports) reuse it
// unchanged.
//
// # Lifecycle
//
//	Submit ──► pending ──► running ──► done
//	              │           │   └──► failed
//	              │           └──────► cancelled   (Cancel while running:
//	              └──────────────────► cancelled    ctx fires, the solver
//	                                                observes it between
//	                                                iterations)
//
// Terminal records (done/failed/cancelled) stay resident for ResultTTL,
// and the newest results are kept under MaxResultBytes — whichever limit
// fires first evicts the oldest terminal record wholly, so a later GET
// answers not-found rather than serving a half-evicted alias.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/obs"
)

// State is a job's position in the lifecycle above.
type State uint8

// The five job states. Terminal states order after the live ones so
// Terminal is a single comparison.
const (
	StatePending State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

// String implements fmt.Stringer for State.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// Manager-level sentinels. ErrQueueFull is the jobs-layer overload signal
// (wire maps it to StatusOverloaded, so clients retry it like any other
// saturation); ErrNotFound is a job ID that never existed or was evicted.
var (
	// ErrClosed: the manager is shut down.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrQueueFull: the pending queue or the record table is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotFound: no job with that ID is resident.
	ErrNotFound = errors.New("jobs: no such job")
)

// Run executes one job. ctx is the job's private context — Cancel and
// Close fire it, and the run must observe it to make jobs cancellable.
// progress may be called freely (it is lock-free) to publish iteration
// progress. bytes is the retained footprint of result charged against
// Config.MaxResultBytes.
type Run func(ctx context.Context, progress func(iter int, resid float64)) (result any, bytes int64, err error)

// Config bounds a Manager. Every zero value selects the documented
// default, so jobs.New(jobs.Config{}) is a usable manager.
type Config struct {
	// Workers is the number of jobs executing concurrently (default 2).
	Workers int
	// MaxQueue bounds jobs waiting to start; Submit beyond it fails with
	// ErrQueueFull (default 64).
	MaxQueue int
	// MaxJobs bounds resident records, live and terminal together
	// (default 1024). Submit evicts the oldest terminal record to make
	// room; if every record is live it fails with ErrQueueFull.
	MaxJobs int
	// ResultTTL is how long a terminal record stays fetchable
	// (default 10 minutes).
	ResultTTL time.Duration
	// MaxResultBytes bounds the summed result footprint of terminal
	// records (default 256 MiB; negative = unbounded).
	MaxResultBytes int64
	// Metrics, when non-nil, registers the sketchsp_jobs_* families.
	Metrics *obs.Registry
}

// Defaults referenced from Config docs and sketchd flags.
const (
	DefaultWorkers        = 2
	DefaultMaxQueue       = 64
	DefaultMaxJobs        = 1024
	DefaultResultTTL      = 10 * time.Minute
	DefaultMaxResultBytes = 256 << 20
)

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return DefaultWorkers
	}
	return c.Workers
}

func (c *Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return DefaultMaxQueue
	}
	return c.MaxQueue
}

func (c *Config) maxJobs() int {
	if c.MaxJobs <= 0 {
		return DefaultMaxJobs
	}
	return c.MaxJobs
}

func (c *Config) resultTTL() time.Duration {
	if c.ResultTTL <= 0 {
		return DefaultResultTTL
	}
	return c.ResultTTL
}

func (c *Config) maxResultBytes() int64 {
	if c.MaxResultBytes == 0 {
		return DefaultMaxResultBytes
	}
	return c.MaxResultBytes
}

// Snapshot is a consistent copy of one job's externally visible state.
type Snapshot struct {
	ID    string
	State State
	// Iters and Resid are the latest progress published by the run.
	Iters int
	Resid float64
	// Result and Bytes are set once State == StateDone.
	Result any
	Bytes  int64
	// Err is the failure cause once State == StateFailed (or the
	// cancellation cause for StateCancelled).
	Err     error
	Created time.Time
	// Done is the terminal-transition time (zero while live).
	Done time.Time
}

type job struct {
	id      string
	run     Run
	cancel  context.CancelFunc
	ctx     context.Context
	created time.Time

	// Lock-free progress, written by the run's callback, read by Get.
	iters atomic.Int64
	resid atomic.Uint64 // Float64bits

	// Guarded by Manager.mu.
	state       State
	cancelAsked bool
	result      any
	bytes       int64
	err         error
	done        time.Time
}

// Manager runs and tracks jobs. Create with New, dispose with Close.
type Manager struct {
	cfg        Config
	rootCtx    context.Context
	rootCancel context.CancelFunc
	queue      chan *job
	wg         sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	pending int // jobs in StatePending
	queued  int // occupied queue-channel slots (≥ pending: a job
	// cancelled while waiting keeps its slot until a worker drains it)
	running     int
	resultBytes int64
	closed      bool
	seq         uint64
	idSalt      string

	met jobMetrics
}

type jobMetrics struct {
	submitted, completed, failed, cancelled, expired, rejected interface{ Inc() }
}

type nopCounter struct{}

func (nopCounter) Inc() {}

// New builds a Manager and starts its worker pool and TTL janitor.
func New(cfg Config) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		rootCtx:    ctx,
		rootCancel: cancel,
		queue:      make(chan *job, cfg.maxQueue()),
		jobs:       make(map[string]*job),
	}
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err == nil {
		m.idSalt = hex.EncodeToString(salt[:])
	} else {
		m.idSalt = fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	m.met = jobMetrics{
		submitted: nopCounter{}, completed: nopCounter{}, failed: nopCounter{},
		cancelled: nopCounter{}, expired: nopCounter{}, rejected: nopCounter{},
	}
	if r := cfg.Metrics; r != nil {
		m.met.submitted = r.Counter("sketchsp_jobs_submitted_total", "Jobs accepted by Submit.")
		m.met.completed = r.Counter("sketchsp_jobs_completed_total", "Jobs that finished successfully.")
		m.met.failed = r.Counter("sketchsp_jobs_failed_total", "Jobs that finished with an error.")
		m.met.cancelled = r.Counter("sketchsp_jobs_cancelled_total", "Jobs cancelled before or during execution.")
		m.met.expired = r.Counter("sketchsp_jobs_expired_total", "Terminal job records evicted by TTL or the result byte budget.")
		m.met.rejected = r.Counter("sketchsp_jobs_rejected_total", "Submissions rejected because a queue or record bound was hit.")
		r.GaugeFunc("sketchsp_jobs_running", "Jobs currently executing.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.running)
		})
		r.GaugeFunc("sketchsp_jobs_queued", "Jobs waiting for a worker.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.pending)
		})
		r.GaugeFunc("sketchsp_jobs_retained", "Resident job records, live and terminal.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(len(m.jobs))
		})
		r.GaugeFunc("sketchsp_jobs_result_bytes", "Summed retained result footprint.", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.resultBytes
		})
	}
	for i := 0; i < cfg.workers(); i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Submit queues a job and returns its ID. Fails with ErrQueueFull when the
// pending queue is at capacity or every resident record is live, and with
// ErrClosed after Close.
func (m *Manager) Submit(run Run) (string, error) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	m.expireLocked(now)
	if m.queued >= m.cfg.maxQueue() {
		m.met.rejected.Inc()
		return "", fmt.Errorf("%w: %d jobs pending", ErrQueueFull, m.queued)
	}
	for len(m.jobs) >= m.cfg.maxJobs() {
		if !m.evictOldestTerminalLocked() {
			m.met.rejected.Inc()
			return "", fmt.Errorf("%w: %d live jobs resident", ErrQueueFull, len(m.jobs))
		}
	}
	m.seq++
	id := fmt.Sprintf("%s%08x", m.idSalt, m.seq)
	ctx, cancel := context.WithCancel(m.rootCtx)
	j := &job{id: id, run: run, ctx: ctx, cancel: cancel, created: now, state: StatePending}
	j.resid.Store(math.Float64bits(0))
	m.jobs[id] = j
	m.pending++
	m.queued++
	// Sent under mu: the queued-count guard above keeps the buffered
	// channel from ever filling, and holding the lock means Close can
	// safely close the channel without racing a send.
	m.queue <- j
	m.met.submitted.Inc()
	return id, nil
}

// Get returns a snapshot of the job, or false if the ID is unknown or the
// record has been evicted.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return snapshotLocked(j), true
}

// Cancel requests cancellation: a pending job transitions to cancelled
// immediately, a running job has its context fired and transitions once
// the run observes it, and a terminal job is left as-is. The returned
// snapshot reflects the post-cancel state; ok is false for unknown IDs.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	switch j.state {
	case StatePending:
		j.state = StateCancelled
		j.err = context.Canceled
		j.done = time.Now()
		j.cancel()
		m.pending-- // its queue slot is a no-op when dequeued
		m.met.cancelled.Inc()
	case StateRunning:
		j.cancelAsked = true
		j.cancel()
	}
	return snapshotLocked(j), true
}

// Close cancels every live job, stops the workers and janitor, and waits
// for them. Records remain readable until the Manager is dropped, but
// Submit fails with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		if j.state == StatePending {
			j.state = StateCancelled
			j.err = context.Canceled
			j.done = time.Now()
			m.pending--
			m.met.cancelled.Inc()
		}
	}
	m.rootCancel() // fires every per-job context
	close(m.queue) // safe: sends only happen under mu
	m.mu.Unlock()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	m.queued--
	if j.state != StatePending { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	m.pending--
	m.running++
	m.mu.Unlock()

	progress := func(iter int, resid float64) {
		j.iters.Store(int64(iter))
		j.resid.Store(math.Float64bits(resid))
	}
	result, bytes, err := safeRun(j, progress)

	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.done = now
	j.cancel()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		j.bytes = bytes
		m.resultBytes += bytes
		m.met.completed.Inc()
		m.enforceBudgetLocked()
	case j.cancelAsked || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
		m.met.cancelled.Inc()
	default:
		j.state = StateFailed
		j.err = err
		m.met.failed.Inc()
	}
}

// safeRun shields the worker pool from a panicking job.
func safeRun(j *job, progress func(int, float64)) (result any, bytes int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, bytes = nil, 0
			err = fmt.Errorf("jobs: job %s panicked: %v", j.id, r)
		}
	}()
	return j.run(j.ctx, progress)
}

// janitor sweeps TTL-expired terminal records so memory is reclaimed even
// with no request traffic (Get/Submit also sweep lazily).
func (m *Manager) janitor() {
	defer m.wg.Done()
	interval := m.cfg.resultTTL() / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.rootCtx.Done():
			return
		case now := <-t.C:
			m.mu.Lock()
			m.expireLocked(now)
			m.mu.Unlock()
		}
	}
}

func (m *Manager) expireLocked(now time.Time) {
	ttl := m.cfg.resultTTL()
	for id, j := range m.jobs {
		if j.state.Terminal() && now.Sub(j.done) > ttl {
			m.dropLocked(id, j)
		}
	}
}

// enforceBudgetLocked evicts oldest-terminal-first until the retained
// result bytes fit the budget.
func (m *Manager) enforceBudgetLocked() {
	budget := m.cfg.maxResultBytes()
	if budget < 0 {
		return
	}
	for m.resultBytes > budget {
		if !m.evictOldestTerminalLocked() {
			return
		}
	}
}

func (m *Manager) evictOldestTerminalLocked() bool {
	var oldest *job
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			continue
		}
		if oldest == nil || j.done.Before(oldest.done) {
			oldest = j
		}
	}
	if oldest == nil {
		return false
	}
	m.dropLocked(oldest.id, oldest)
	return true
}

func (m *Manager) dropLocked(id string, j *job) {
	m.resultBytes -= j.bytes
	delete(m.jobs, id)
	m.met.expired.Inc()
}

func snapshotLocked(j *job) Snapshot {
	return Snapshot{
		ID:      j.id,
		State:   j.state,
		Iters:   int(j.iters.Load()),
		Resid:   math.Float64frombits(j.resid.Load()),
		Result:  j.result,
		Bytes:   j.bytes,
		Err:     j.err,
		Created: j.created,
		Done:    j.done,
	}
}
