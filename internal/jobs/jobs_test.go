package jobs

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := m.Get(id); ok && snap.State == want {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, ok := m.Get(id)
	t.Fatalf("job %s never reached %v (now %v, resident %v)", id, want, snap.State, ok)
	return Snapshot{}
}

// blockingRun returns a Run that signals started and then waits for release
// or cancellation, so tests control exactly when workers are occupied.
func blockingRun(started chan<- string, release <-chan struct{}, result any, bytes int64) Run {
	return func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		if started != nil {
			started <- ""
		}
		select {
		case <-release:
			return result, bytes, nil
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

func TestJobLifecycleDone(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		progress(7, 0.125)
		started <- ""
		<-release
		return "answer", 42, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	snap, ok := m.Get(id)
	if !ok || snap.State != StateRunning {
		t.Fatalf("mid-run Get = %+v, %v; want running", snap, ok)
	}
	if snap.Iters != 7 || snap.Resid != 0.125 {
		t.Errorf("progress not published: iters=%d resid=%v", snap.Iters, snap.Resid)
	}
	close(release)
	snap = waitState(t, m, id, StateDone)
	if snap.Result != "answer" || snap.Bytes != 42 || snap.Err != nil {
		t.Errorf("done snapshot = %+v", snap)
	}
	if snap.Done.IsZero() || snap.Created.IsZero() {
		t.Errorf("terminal timestamps missing: %+v", snap)
	}
}

func TestJobFailed(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	boom := errors.New("boom")
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return nil, 0, boom
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, m, id, StateFailed)
	if !errors.Is(snap.Err, boom) {
		t.Errorf("failed job Err = %v, want %v", snap.Err, boom)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, m, id, StateFailed)
	if snap.Err == nil {
		t.Fatal("panicking job reported no error")
	}
	// The pool survives: the same worker must run the next job.
	id2, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return 1, 0, nil
	})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitState(t, m, id2, StateDone)
}

func TestCancelPendingJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Submit(blockingRun(started, release, nil, 0)); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started // the only worker is now occupied
	ran := make(chan struct{}, 1)
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		ran <- struct{}{}
		return nil, 0, nil
	})
	if err != nil {
		t.Fatalf("Submit pending: %v", err)
	}
	snap, ok := m.Cancel(id)
	if !ok || snap.State != StateCancelled {
		t.Fatalf("Cancel pending = %+v, %v; want cancelled", snap, ok)
	}
	if !errors.Is(snap.Err, context.Canceled) {
		t.Errorf("cancelled Err = %v", snap.Err)
	}
	select {
	case <-ran:
		t.Fatal("cancelled pending job still ran")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	started := make(chan string, 1)
	id, err := m.Submit(blockingRun(started, nil, nil, 0))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if snap, ok := m.Cancel(id); !ok || snap.State != StateRunning {
		// Cancel of a running job only requests: the transition lands when
		// the run observes its context.
		t.Fatalf("Cancel running = %+v, %v; want still running", snap, ok)
	}
	snap := waitState(t, m, id, StateCancelled)
	if !errors.Is(snap.Err, context.Canceled) {
		t.Errorf("cancelled Err = %v", snap.Err)
	}
}

func TestCancelTerminalIsNoop(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return "kept", 8, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, id, StateDone)
	snap, ok := m.Cancel(id)
	if !ok || snap.State != StateDone || snap.Result != "kept" {
		t.Fatalf("Cancel(done) = %+v, %v; want done with result intact", snap, ok)
	}
}

func TestQueueFullSheds(t *testing.T) {
	m := New(Config{Workers: 1, MaxQueue: 2})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Submit(blockingRun(started, release, nil, 0)); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	// The blocker's slot is drained (it is running); two more fill the queue.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(blockingRun(nil, release, nil, 0)); err != nil {
			t.Fatalf("Submit fill %d: %v", i, err)
		}
	}
	if _, err := m.Submit(blockingRun(nil, release, nil, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit beyond queue = %v, want ErrQueueFull", err)
	}
}

func TestMaxJobsAllLiveSheds(t *testing.T) {
	m := New(Config{Workers: 1, MaxJobs: 2, MaxQueue: 8})
	defer m.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Submit(blockingRun(started, release, nil, 0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, err := m.Submit(blockingRun(nil, release, nil, 0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.Submit(blockingRun(nil, release, nil, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit with all records live = %v, want ErrQueueFull", err)
	}
}

func TestMaxJobsEvictsTerminal(t *testing.T) {
	m := New(Config{Workers: 1, MaxJobs: 2})
	defer m.Close()
	first, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return 1, 0, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, first, StateDone)
	second, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return 2, 0, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, second, StateDone)
	// Both records resident at the cap; a third submit evicts the oldest.
	third, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return 3, 0, nil
	})
	if err != nil {
		t.Fatalf("Submit at cap: %v", err)
	}
	if _, ok := m.Get(first); ok {
		t.Error("oldest terminal record survived eviction")
	}
	waitState(t, m, third, StateDone)
}

func TestResultTTLExpiry(t *testing.T) {
	m := New(Config{Workers: 1, ResultTTL: 30 * time.Millisecond})
	defer m.Close()
	id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
		return "soon gone", 16, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, m, id, StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(id); !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal record survived its TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestResultByteBudgetEvictsOldest(t *testing.T) {
	m := New(Config{Workers: 1, MaxResultBytes: 100})
	defer m.Close()
	submit := func(bytes int64) string {
		id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
			return bytes, bytes, nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitState(t, m, id, StateDone)
		return id
	}
	a := submit(60)
	b := submit(30)
	c := submit(60) // 150 > 100: the oldest (a) must go
	if _, ok := m.Get(a); ok {
		t.Error("oldest result survived the byte budget")
	}
	for _, id := range []string{b, c} {
		if _, ok := m.Get(id); !ok {
			t.Errorf("job %s evicted though the remaining results fit", id)
		}
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	m := New(Config{Workers: 1})
	started := make(chan string, 1)
	id, err := m.Submit(blockingRun(started, nil, nil, 0))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	pending, err := m.Submit(blockingRun(nil, nil, nil, 0))
	if err != nil {
		t.Fatalf("Submit pending: %v", err)
	}
	m.Close()
	if snap, ok := m.Get(id); !ok || snap.State != StateCancelled {
		t.Errorf("running job after Close = %+v, %v; want cancelled", snap, ok)
	}
	if snap, ok := m.Get(pending); !ok || snap.State != StateCancelled {
		t.Errorf("pending job after Close = %+v, %v; want cancelled", snap, ok)
	}
	if _, err := m.Submit(blockingRun(nil, nil, nil, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestGetUnknownID(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	if _, ok := m.Get("no-such-job"); ok {
		t.Error("Get of unknown ID reported a job")
	}
	if _, ok := m.Cancel("no-such-job"); ok {
		t.Error("Cancel of unknown ID reported a job")
	}
}

// Job IDs travel inside wire.JobStatus frames, whose decoder enforces the
// [0-9a-z-] charset and a 64-byte cap; the manager must only mint IDs that
// survive the trip.
func TestJobIDWireSafe(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	idRe := regexp.MustCompile(`^[0-9a-z-]{1,64}$`)
	for i := 0; i < 3; i++ {
		id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
			return nil, 0, nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if !idRe.MatchString(id) {
			t.Fatalf("job ID %q is not wire-safe", id)
		}
	}
}

// TestConcurrentHammer drives every entry point from many goroutines at
// once; its value is under -race, where it pins the locking discipline.
func TestConcurrentHammer(t *testing.T) {
	m := New(Config{Workers: 4, MaxQueue: 256, MaxJobs: 256, MaxResultBytes: 1 << 20})
	defer m.Close()
	var wg sync.WaitGroup
	ids := make(chan string, 1024)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := m.Submit(func(ctx context.Context, progress func(int, float64)) (any, int64, error) {
					progress(i, float64(i))
					select {
					case <-ctx.Done():
						return nil, 0, ctx.Err()
					default:
					}
					return fmt.Sprintf("g%d-%d", g, i), 64, nil
				})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				select {
				case ids <- id:
				default:
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				select {
				case id := <-ids:
					m.Get(id)
					if i%3 == 0 {
						m.Cancel(id)
					}
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
}
