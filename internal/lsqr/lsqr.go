// Package lsqr implements the LSQR iterative least-squares solver of Paige
// and Saunders (TOMS 1982) with right preconditioning, the inner solver of
// the paper's sketch-and-precondition pipeline (§V-C1). LSQR runs on the
// preconditioned operator B = A·P and stops on the paper's backward-error
// metric ‖Bᵀr‖ / (‖B‖·‖r‖) ≤ atol, using LSQR's internal estimates of ‖B‖
// and the residual norms.
package lsqr

import (
	"fmt"
	"math"

	"sketchsp/internal/dense"
	"sketchsp/internal/sparse"
)

// Operator is the matrix abstraction LSQR iterates on: anything that can
// report its dimensions and apply itself and its transpose to vectors.
// *sparse.CSC satisfies it; solver wraps it to build left-preconditioned
// operators for the underdetermined (min-norm) pipeline.
type Operator interface {
	// Dims returns (rows, cols).
	Dims() (m, n int)
	// MulVec computes y = A·x (len(x) = cols, len(y) = rows).
	MulVec(x, y []float64)
	// MulVecT computes y = Aᵀ·x (len(x) = rows, len(y) = cols).
	MulVecT(x, y []float64)
}

// RightPrecond applies a right preconditioner P: LSQR iterates on B = A·P
// and the final solution is x = P·y. The SAP pipeline supplies P = R⁻¹ (QR)
// or P = V·Σ⁺ (SVD); LSQR-D supplies a diagonal.
type RightPrecond interface {
	// Apply computes dst = P·src. dst and src have length n and must not
	// alias.
	Apply(dst, src []float64)
	// ApplyT computes dst = Pᵀ·src, same contract.
	ApplyT(dst, src []float64)
}

// Identity is the trivial preconditioner.
type Identity struct{}

// Apply copies src into dst.
func (Identity) Apply(dst, src []float64) { copy(dst, src) }

// ApplyT copies src into dst.
func (Identity) ApplyT(dst, src []float64) { copy(dst, src) }

// Diagonal is the diagonal preconditioner of the paper's LSQR-D baseline:
// P = diag(d).
type Diagonal struct{ D []float64 }

// Apply computes dst = diag(D)·src.
func (p Diagonal) Apply(dst, src []float64) {
	for i, v := range src {
		dst[i] = p.D[i] * v
	}
}

// ApplyT equals Apply for a diagonal.
func (p Diagonal) ApplyT(dst, src []float64) { p.Apply(dst, src) }

// UpperTriangular is P = R⁻¹ for an upper-triangular R (the SAP-QR
// preconditioner): Apply performs a triangular solve.
type UpperTriangular struct{ R *dense.Matrix }

// Apply computes dst = R⁻¹·src.
func (p UpperTriangular) Apply(dst, src []float64) {
	copy(dst, src)
	dense.TrsvUpper(p.R, dst)
}

// ApplyT computes dst = R⁻ᵀ·src.
func (p UpperTriangular) ApplyT(dst, src []float64) {
	copy(dst, src)
	dense.TrsvUpperT(p.R, dst)
}

// SigmaV is P = V·Σ⁺ from an SVD of the sketch (the SAP-SVD
// preconditioner). Singular values at or below Drop·σmax are treated as
// zero (their directions are projected out), mirroring the paper's
// σ < σmax/10¹² truncation.
type SigmaV struct {
	V     *dense.Matrix
	Sigma []float64
	Drop  float64
}

// Apply computes dst = V·Σ⁺·src.
func (p SigmaV) Apply(dst, src []float64) {
	n := len(src)
	tmp := make([]float64, n)
	thresh := p.threshold()
	for i := 0; i < n; i++ {
		if p.Sigma[i] > thresh {
			tmp[i] = src[i] / p.Sigma[i]
		}
	}
	dense.Gemv(1, p.V, tmp, 0, dst)
}

// ApplyT computes dst = Σ⁺·Vᵀ·src.
func (p SigmaV) ApplyT(dst, src []float64) {
	n := len(src)
	dense.GemvT(1, p.V, src, 0, dst)
	thresh := p.threshold()
	for i := 0; i < n; i++ {
		if p.Sigma[i] > thresh {
			dst[i] /= p.Sigma[i]
		} else {
			dst[i] = 0
		}
	}
}

func (p SigmaV) threshold() float64 {
	if len(p.Sigma) == 0 {
		return 0
	}
	return p.Sigma[0] * p.Drop
}

// Options controls a Solve call.
type Options struct {
	// Atol is the backward-error stopping tolerance on the
	// preconditioned system (paper: 1e-14). 0 selects 1e-14.
	Atol float64
	// Btol is the residual-based tolerance for consistent systems
	// (Paige–Saunders test 1: ‖r‖ ≤ Btol·‖b‖ + Atol·‖B‖·‖y‖).
	// 0 selects Atol.
	Btol float64
	// Damp is the Tikhonov damping parameter λ ≥ 0: solve
	// min ‖A·x − b‖² + λ²·‖y‖² (y the preconditioned variables),
	// the damped LSQR of Paige & Saunders §1.
	Damp float64
	// MaxIters bounds the iterations; 0 selects 4·max(m, n).
	MaxIters int
	// Precond is the right preconditioner; nil means Identity.
	Precond RightPrecond
	// Progress, when non-nil, is called once per iteration with the
	// iteration number and the current residual-norm estimate ‖B·y − b‖.
	// It runs on the solving goroutine after the iteration's updates and
	// must not modify solver state; it has no effect on the arithmetic,
	// so results are bit-identical with or without it.
	Progress func(iter int, rnorm float64)
	// Interrupt, when non-nil, is polled once per iteration before any
	// work; a non-nil return aborts the solve with that error and the
	// partial result so far. context.Context.Err is the intended value.
	Interrupt func() error
}

// Result reports the outcome of a Solve.
type Result struct {
	// X is the solution in the original variables, x = P·y.
	X []float64
	// Iters is the number of LSQR iterations performed.
	Iters int
	// Converged reports whether the stopping tolerance was reached
	// before MaxIters.
	Converged bool
	// RNorm is the final estimate of ‖B·y − b‖.
	RNorm float64
	// ATRNorm is the final estimate of ‖Bᵀ·(B·y − b)‖.
	ATRNorm float64
	// BNorm is the running Frobenius-norm estimate of the
	// preconditioned operator.
	BNorm float64
}

// Solve runs preconditioned LSQR on min ‖A·x − b‖₂ for a sparse matrix.
func Solve(a *sparse.CSC, b []float64, opts Options) (Result, error) {
	return SolveOp(a, b, opts)
}

// SolveOp runs preconditioned LSQR on min ‖A·x − b‖₂ for any Operator.
func SolveOp(a Operator, b []float64, opts Options) (Result, error) {
	m, n := a.Dims()
	if len(b) != m {
		return Result{}, fmt.Errorf("lsqr: len(b)=%d, want m=%d", len(b), m)
	}
	atol := opts.Atol
	if atol == 0 {
		atol = 1e-14
	}
	btol := opts.Btol
	if btol == 0 {
		btol = atol
	}
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 4 * max(m, n)
	}
	p := opts.Precond
	if p == nil {
		p = Identity{}
	}

	// Golub–Kahan bidiagonalization of B = A·P, starting from b.
	u := append([]float64(nil), b...)
	beta := dense.Nrm2(u)
	res := Result{X: make([]float64, n)}
	if beta == 0 {
		res.Converged = true
		return res, nil // b = 0 → x = 0
	}
	dense.Scal(1/beta, u)

	v := make([]float64, n)
	tmpN := make([]float64, n)
	tmpM := make([]float64, m)
	// v = Bᵀu = Pᵀ(Aᵀu)
	a.MulVecT(u, tmpN)
	p.ApplyT(v, tmpN)
	alpha := dense.Nrm2(v)
	if alpha == 0 {
		res.Converged = true
		return res, nil // Aᵀb = 0 → x = 0 is the solution
	}
	dense.Scal(1/alpha, v)

	w := append([]float64(nil), v...)
	y := make([]float64, n) // solution in preconditioned coordinates

	phiBar := beta
	rhoBar := alpha
	normb := beta
	var bnorm2 float64 = alpha * alpha
	var psi2 float64 // Σψ²: damping's contribution to the residual norm

	var arnorm, rnorm float64
	for it := 1; it <= maxIters; it++ {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				res.RNorm = rnorm
				res.ATRNorm = arnorm
				res.BNorm = math.Sqrt(bnorm2)
				p.Apply(res.X, y)
				return res, err
			}
		}
		// u = B·v − α·u
		p.Apply(tmpN, v)
		a.MulVec(tmpN, tmpM)
		for i := range u {
			u[i] = tmpM[i] - alpha*u[i]
		}
		beta = dense.Nrm2(u)
		if beta > 0 {
			dense.Scal(1/beta, u)
		}
		bnorm2 += alpha*alpha + beta*beta

		// v = Bᵀ·u − β·v
		a.MulVecT(u, tmpN)
		prev := v
		vNew := make([]float64, n)
		p.ApplyT(vNew, tmpN)
		for i := range vNew {
			vNew[i] -= beta * prev[i]
		}
		alpha = dense.Nrm2(vNew)
		if alpha > 0 {
			dense.Scal(1/alpha, vNew)
		}
		v = vNew

		// With damping, first rotate λ into the bidiagonal (Paige &
		// Saunders' treatment of the augmented system [B; λI]).
		rhoBar1 := rhoBar
		if opts.Damp > 0 {
			rhoBar1 = math.Hypot(rhoBar, opts.Damp)
			c1 := rhoBar / rhoBar1
			s1 := opts.Damp / rhoBar1
			psi := s1 * phiBar
			psi2 += psi * psi
			phiBar = c1 * phiBar
		}

		// Givens rotation to eliminate β from the bidiagonal system.
		rho := math.Hypot(rhoBar1, beta)
		c := rhoBar1 / rho
		s := beta / rho
		theta := s * alpha
		rhoBar = -c * alpha
		phi := c * phiBar
		phiBar = s * phiBar

		// Update y and the search direction w.
		t1 := phi / rho
		t2 := -theta / rho
		for i := 0; i < n; i++ {
			y[i] += t1 * w[i]
			w[i] = v[i] + t2*w[i]
		}

		rnorm = math.Abs(phiBar)
		arnorm = rnorm * alpha * math.Abs(c)
		res.Iters = it
		if opts.Progress != nil {
			opts.Progress(it, rnorm)
		}
		bn := math.Sqrt(bnorm2)
		// Test 2 (least squares): the paper's backward-error metric.
		if arnorm <= atol*bn*rnorm || arnorm == 0 {
			res.Converged = true
			break
		}
		// Test 1 (consistent systems): the residual of the (possibly
		// damped) augmented system is at the noise floor.
		if math.Hypot(rnorm, math.Sqrt(psi2)) <= btol*normb+atol*bn*dense.Nrm2(y) {
			res.Converged = true
			break
		}
	}
	res.RNorm = rnorm
	res.ATRNorm = arnorm
	res.BNorm = math.Sqrt(bnorm2)
	p.Apply(res.X, y)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
