package lsqr

import (
	"math"
	"math/rand"
	"testing"

	"sketchsp/internal/dense"
	"sketchsp/internal/linalg"
	"sketchsp/internal/sparse"
)

// buildConsistent builds a sparse LS problem with known solution.
func buildConsistent(seed int64, m, n int, density float64) (*sparse.CSC, []float64, []float64) {
	a := sparse.RandomUniform(m, n, density, seed)
	r := rand.New(rand.NewSource(seed + 100))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(xTrue, b)
	return a, xTrue, b
}

func TestSolveConsistentSystem(t *testing.T) {
	a, xTrue, b := buildConsistent(1, 200, 20, 0.2)
	res, err := Solve(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iters)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], xTrue[i])
		}
	}
}

func TestSolveInconsistentMatchesQR(t *testing.T) {
	a := sparse.RandomUniform(120, 10, 0.3, 2)
	r := rand.New(rand.NewSource(3))
	b := make([]float64, 120)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	res, err := Solve(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.NewQR(a.ToDense()).Solve(b)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, QR says %g", i, res.X[i], want[i])
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := sparse.RandomUniform(50, 5, 0.3, 4)
	res, err := Solve(a, make([]float64, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters != 0 {
		t.Fatalf("zero rhs: converged=%v iters=%d", res.Converged, res.Iters)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestSolveRHSOrthogonalToRange(t *testing.T) {
	// b ⊥ range(A): Aᵀb = 0 → x = 0 immediately.
	coo := sparse.NewCOO(4, 2, 2)
	coo.Append(0, 0, 1)
	coo.Append(1, 1, 1)
	a := coo.ToCSC()
	b := []float64{0, 0, 1, 1} // touches only rows outside the column span
	res, err := Solve(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Nrm2(res.X) != 0 {
		t.Fatalf("x = %v, want 0", res.X)
	}
}

func TestSolveDimensionError(t *testing.T) {
	a := sparse.RandomUniform(10, 3, 0.5, 5)
	if _, err := Solve(a, make([]float64, 7), Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveMaxItersRespected(t *testing.T) {
	a, _, b := buildConsistent(6, 300, 40, 0.1)
	res, err := Solve(a, b, Options{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 3 {
		t.Fatalf("ran %d iterations, cap was 3", res.Iters)
	}
	if res.Converged {
		t.Fatal("claimed convergence in 3 iterations on a 40-column system")
	}
}

// An ill-conditioned system converges dramatically faster with a good right
// preconditioner — the entire premise of SAP.
func TestPreconditioningAcceleratesConvergence(t *testing.T) {
	m, n := 400, 30
	a := sparse.RandomUniform(m, n, 0.2, 7)
	// Scale columns geometrically across 6 orders of magnitude.
	for j := 0; j < n; j++ {
		_, vals := a.ColView(j)
		f := math.Pow(10, -6*float64(j)/float64(n-1))
		for k := range vals {
			vals[k] *= f
		}
	}
	r := rand.New(rand.NewSource(8))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(xTrue, b)

	plain, err := Solve(a, b, Options{MaxIters: 5000, Atol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal preconditioner: R from the QR of A itself (cond(AR⁻¹) = 1).
	qr := linalg.NewQR(a.ToDense())
	pre, err := Solve(a, b, Options{MaxIters: 5000, Atol: 1e-13,
		Precond: UpperTriangular{R: qr.R()}})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("preconditioned run did not converge")
	}
	if pre.Iters*5 > plain.Iters && plain.Iters > 50 {
		t.Fatalf("preconditioning barely helped: %d vs %d iters", pre.Iters, plain.Iters)
	}
	for i := range xTrue {
		if math.Abs(pre.X[i]-xTrue[i]) > 1e-6*math.Max(1, math.Abs(xTrue[i])) {
			t.Fatalf("preconditioned x[%d] = %g, want %g", i, pre.X[i], xTrue[i])
		}
	}
}

func TestDiagonalPreconditioner(t *testing.T) {
	m, n := 300, 15
	a := sparse.RandomUniform(m, n, 0.3, 9)
	for j := 0; j < n; j++ {
		_, vals := a.ColView(j)
		f := math.Pow(10, -5*float64(j)/float64(n-1))
		for k := range vals {
			vals[k] *= f
		}
	}
	b := make([]float64, m)
	r := rand.New(rand.NewSource(10))
	for i := range b {
		b[i] = r.NormFloat64()
	}
	norms := a.ColNorms()
	d := make([]float64, n)
	for i, v := range norms {
		d[i] = 1 / v
	}
	plain, _ := Solve(a, b, Options{MaxIters: 8000})
	diag, _ := Solve(a, b, Options{MaxIters: 8000, Precond: Diagonal{D: d}})
	if !diag.Converged {
		t.Fatal("LSQR-D did not converge")
	}
	if diag.Iters >= plain.Iters && plain.Iters > 100 {
		t.Fatalf("diagonal preconditioner did not help: %d vs %d", diag.Iters, plain.Iters)
	}
}

func TestSigmaVPreconditioner(t *testing.T) {
	// Using the SVD of A itself: A·(VΣ⁺) = U, perfectly conditioned →
	// LSQR converges in O(1) iterations.
	m, n := 200, 12
	a := sparse.RandomUniform(m, n, 0.3, 11)
	svd := linalg.NewSVD(a.ToDense(), 0)
	b := make([]float64, m)
	r := rand.New(rand.NewSource(12))
	for i := range b {
		b[i] = r.NormFloat64()
	}
	res, err := Solve(a, b, Options{Precond: SigmaV{V: svd.V, Sigma: svd.Sigma, Drop: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters > 10 {
		t.Fatalf("perfect SVD preconditioner took %d iterations", res.Iters)
	}
	want := linalg.NewQR(a.ToDense()).Solve(b)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

func TestSigmaVDropsTinySingularValues(t *testing.T) {
	// Rank-deficient A: SigmaV with Drop must produce the minimum-norm-ish
	// solution without dividing by ~0.
	coo := sparse.NewCOO(6, 3, 12)
	for i := 0; i < 6; i++ {
		coo.Append(i, 0, float64(i+1))
		coo.Append(i, 1, 2*float64(i+1)) // col1 = 2·col0
	}
	coo.Append(0, 2, 1)
	coo.Append(3, 2, -1)
	a := coo.ToCSC()
	svd := linalg.NewSVD(a.ToDense(), 0)
	b := []float64{1, 2, 3, 4, 5, 6}
	res, err := Solve(a, b, Options{Precond: SigmaV{V: svd.V, Sigma: svd.Sigma, Drop: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
	// Residual must still be minimised over the retained subspace:
	// check Aᵀr is small in the non-null directions.
	ax := make([]float64, 6)
	a.MulVec(res.X, ax)
	for i := range ax {
		ax[i] -= b[i]
	}
	atr := make([]float64, 3)
	a.MulVecT(ax, atr)
	// Project out the null direction (v for smallest σ).
	null := svd.V.Col(2)
	dot := dense.Dot(atr, null)
	for i := range atr {
		atr[i] -= dot * null[i]
	}
	if dense.Nrm2(atr) > 1e-8 {
		t.Fatalf("range-space optimality violated: ‖Aᵀr‖ = %g", dense.Nrm2(atr))
	}
}

func TestIdentityPrecondMatchesNil(t *testing.T) {
	a, _, b := buildConsistent(13, 100, 10, 0.3)
	r1, _ := Solve(a, b, Options{})
	r2, _ := Solve(a, b, Options{Precond: Identity{}})
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatal("explicit Identity differs from nil preconditioner")
		}
	}
}

func TestDampedLSQRMatchesAugmentedSystem(t *testing.T) {
	// min ‖Ax−b‖² + λ²‖x‖² equals the ordinary least-squares problem on
	// the augmented matrix [A; λI] with rhs [b; 0]; verify against a
	// dense QR solve of that augmentation.
	m, n := 80, 12
	a := sparse.RandomUniform(m, n, 0.3, 31)
	r := rand.New(rand.NewSource(32))
	b := make([]float64, m)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	const damp = 0.7
	res, err := Solve(a, b, Options{Damp: damp, Atol: 1e-14, MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}

	aug := dense.NewMatrix(m+n, n)
	ad := a.ToDense()
	for j := 0; j < n; j++ {
		copy(aug.Col(j)[:m], ad.Col(j))
		aug.Set(m+j, j, damp)
	}
	bAug := make([]float64, m+n)
	copy(bAug, b)
	want := linalg.NewQR(aug).Solve(bAug)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("damped x[%d] = %g, augmented QR says %g", i, res.X[i], want[i])
		}
	}
}

func TestDampedLSQRShrinksSolution(t *testing.T) {
	a, _, b := buildConsistent(33, 150, 15, 0.25)
	plain, err := Solve(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := Solve(a, b, Options{Damp: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Nrm2(damped.X) >= dense.Nrm2(plain.X) {
		t.Fatalf("damping did not shrink ‖x‖: %g vs %g",
			dense.Nrm2(damped.X), dense.Nrm2(plain.X))
	}
}
