package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/obs"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// postFrame POSTs one raw wire frame and returns the HTTP status — the
// client-side tally the metrics must reconcile with. No retries: every POST
// is exactly one response counted on exactly one code series.
func postFrame(t *testing.T, base string, frame []byte) int {
	t.Helper()
	res, err := http.Post(base+"/v1/sketch", "application/x-sketchsp-wire", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	return res.StatusCode
}

// TestE2EMetricsEndpointReconciles is the pinned contract of the tentpole:
// /metrics and /stats read the very same atomics, so after a mixed replay
// of successes, cache hits, malformed bodies, a method error and an
// overload shed — each tallied client-side from the HTTP status — the
// Prometheus exposition, the JSON snapshot and the client's own counts must
// agree EXACTLY, including bucket-by-bucket histogram geometry.
func TestE2EMetricsEndpointReconciles(t *testing.T) {
	base, svc, srv := startServer(t,
		service.Config{MaxInFlight: 1, MaxQueue: 1, Capacity: 8},
		Config{})

	codes := map[int]int{} // client-side tally: HTTP status -> responses seen
	a1 := sparse.RandomUniform(300, 60, 0.05, 1)
	a2 := sparse.PowerLaw(400, 50, 3000, 1.0, 2)
	opts := core.Options{Dist: rng.Rademacher, Seed: 7, Workers: 2}

	frame1, err := wire.EncodeRequestFrame(24, opts, a1)
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := wire.EncodeRequestFrame(16, opts, a2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // 1 miss + 4 hits
		codes[postFrame(t, base, frame1)]++
	}
	for i := 0; i < 2; i++ { // 1 miss + 1 hit
		codes[postFrame(t, base, frame2)]++
	}
	for i := 0; i < 3; i++ { // malformed: not a wire frame at all
		codes[postFrame(t, base, []byte("definitely not a frame"))]++
	}
	res, err := http.Get(base + "/v1/sketch") // method error
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	codes[res.StatusCode]++

	// Overload shed: a heavy in-process sketch owns the single admission
	// slot, a second waiter fills the queue, and the next HTTP request must
	// bounce with 429 from its one attempt.
	heavy := sparse.RandomUniform(2000, 200, 0.25, 17)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, _, err := svc.Sketch(context.Background(), heavy, 2000, core.Options{Workers: 1, Seed: 1}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, "blocker in flight", func() bool { return svc.Stats().InFlight >= 1 })
	go func() {
		defer wg.Done()
		if _, _, err := svc.Sketch(context.Background(), a1, 24, opts); err != nil {
			t.Errorf("queued waiter: %v", err)
		}
	}()
	waitFor(t, "waiter queued", func() bool { return svc.Stats().QueueDepth >= 1 })
	codes[postFrame(t, base, frame2)]++ // shed -> 429
	wg.Wait()                           // quiesce before scraping

	if codes[200] != 7 || codes[400] != 3 || codes[405] != 1 || codes[429] != 1 {
		t.Fatalf("client-side tallies drifted from the script: %v", codes)
	}

	// Scrape.
	mres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	if ct := mres.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	mm, err := obs.ParseText(mres.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	sres, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(sres.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}

	metric := func(key string) float64 {
		t.Helper()
		v, ok := mm[key]
		if !ok {
			t.Fatalf("/metrics is missing %q", key)
		}
		return v
	}
	expectEq := func(key string, want int64) {
		t.Helper()
		if got := metric(key); got != float64(want) {
			t.Errorf("%s = %v, want %d", key, got, want)
		}
	}

	// Per-status response counters vs the client's own tally — every code
	// the endpoint can emit, including the zero ones.
	for _, code := range []int{200, 400, 405, 429, 499, 500, 503, 504} {
		expectEq(fmt.Sprintf(`sketchsp_http_responses_total{code="%d"}`, code), int64(codes[code]))
	}
	expectEq(`sketchsp_http_responses_total{code="other"}`, 0)

	// Transport counters: /metrics == /stats == script. Decoded sketch
	// requests = 7 successes + 1 shed (its frame decoded fine); the three
	// garbage bodies and the GET never reach the decoder's counter.
	expectEq("sketchsp_http_requests_total", 8)
	expectEq("sketchsp_http_requests_total", snap.Server.Requests)
	expectEq("sketchsp_http_bad_requests_total", 3)
	expectEq("sketchsp_http_bad_requests_total", snap.Server.BadRequests)
	expectEq("sketchsp_http_request_bytes_total", snap.Server.BytesIn)
	expectEq("sketchsp_http_response_bytes_total", snap.Server.BytesOut)
	if snap.Server.BytesIn == 0 || snap.Server.BytesOut == 0 {
		t.Errorf("byte counters did not move: %+v", snap.Server)
	}

	// Stage histograms: decode ran for all 11 POSTs, execute and encode
	// only for the 8 decodable requests (the shed one included — the
	// rejection happens inside the service call).
	expectEq("sketchsp_http_decode_seconds_count", 11)
	expectEq("sketchsp_http_execute_seconds_count", 8)
	expectEq("sketchsp_http_encode_seconds_count", 8)

	// Service families vs the JSON snapshot, field by field.
	svcStats := snap.Service
	expectEq("sketchsp_service_cache_hits_total", svcStats.Hits)
	expectEq("sketchsp_service_cache_misses_total", svcStats.Misses)
	expectEq("sketchsp_service_plan_builds_total", svcStats.Builds)
	expectEq("sketchsp_service_plan_build_errors_total", svcStats.BuildErrors)
	expectEq("sketchsp_service_cache_evictions_total", svcStats.Evictions)
	expectEq("sketchsp_service_shed_total", svcStats.Rejections)
	expectEq("sketchsp_service_canceled_total", svcStats.Cancels)
	expectEq("sketchsp_service_in_flight", svcStats.InFlight)
	expectEq("sketchsp_service_queue_depth", svcStats.QueueDepth)
	expectEq("sketchsp_service_cached_plans", int64(svcStats.CachedPlans))
	if svcStats.Rejections != 1 {
		t.Errorf("Rejections = %d, want exactly the one shed POST", svcStats.Rejections)
	}
	// In-process traffic (blocker + waiter) rode the same service; the
	// latency histogram observes exactly the successfully completed
	// requests.
	expectEq("sketchsp_service_request_seconds_count", svcStats.Requests)
	if svcStats.Requests != 9 { // 7 HTTP + blocker + waiter; the shed never completes
		t.Errorf("service Requests = %d, want 9", svcStats.Requests)
	}

	// Histogram geometry: the exposition's cumulative le-buckets must match
	// the /stats raw bucket array exactly, edge for edge.
	var cum int64
	for i := 0; i < service.HistBuckets-1; i++ {
		cum += svcStats.LatencyHist[i]
		le := strconv.FormatFloat(service.BucketCeiling(i).Seconds(), 'g', -1, 64)
		expectEq(`sketchsp_service_request_seconds_bucket{le="`+le+`"}`, cum)
	}
	cum += svcStats.LatencyHist[service.HistBuckets-1]
	expectEq(`sketchsp_service_request_seconds_bucket{le="+Inf"}`, cum)
	if cum != svcStats.Requests {
		t.Errorf("histogram total %d != Requests %d", cum, svcStats.Requests)
	}

	// Plan executes aggregate across cache entries must agree with the
	// per-entry view /stats serves.
	var executes int64
	for _, e := range svcStats.Entries {
		executes += e.Executes
	}
	expectEq("sketchsp_plan_executes_total", executes)

	// The server's registry is the service's (Config.Metrics defaulting):
	// one scrape covers the whole stack.
	if srv.cfg.Metrics != svc.Registry() {
		t.Error("server did not default its registry to the service's")
	}
}

// TestE2EPprofGate: /debug/pprof is absent by default and present behind
// Config.Pprof — profiling on a serving port is opt-in.
func TestE2EPprofGate(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	res, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %d, want 404", res.StatusCode)
	}

	base2, _, _ := startServer(t, service.Config{}, Config{Pprof: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base2+"/debug/pprof/cmdline", nil)
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof on: GET /debug/pprof/cmdline = %d, %d bytes; want 200 with content", res2.StatusCode, len(body))
	}
}
