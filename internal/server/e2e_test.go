package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/wire"
)

// startServer runs a real server on a loopback listener and returns its
// base URL plus the shared service for in-process poking.
func startServer(t *testing.T, svcCfg service.Config, srvCfg Config) (string, *service.Service, *Server) {
	t.Helper()
	svc := service.New(svcCfg)
	srv := New(svc, srvCfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
		svc.Close()
	})
	return "http://" + l.Addr().String(), svc, srv
}

// e2eMatrices is the shape corpus for the bit-identity test: realistic plus
// every degenerate the codec and the planner must agree on.
func e2eMatrices(t *testing.T) map[string]*sparse.CSC {
	t.Helper()
	ms := map[string]*sparse.CSC{
		"powerlaw": sparse.PowerLaw(500, 120, 6000, 1.0, 11),
		"uniform":  sparse.RandomUniform(300, 80, 0.02, 5),
		"0xn":      {M: 0, N: 17, ColPtr: make([]int, 18)},
		"mx0":      {M: 23, N: 0, ColPtr: []int{0}},
	}
	empty, err := sparse.NewCSC(40, 6,
		[]int{0, 2, 2, 2, 5, 5, 5},
		[]int{1, 30, 0, 7, 39},
		[]float64{1, -2, 3, -4, 5})
	if err != nil {
		t.Fatal(err)
	}
	ms["emptycols"] = empty
	for name, a := range ms {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return ms
}

// bitIdentical compares two dense matrices by Float64bits — the serving
// path must reproduce the in-process sketch exactly, not approximately.
func bitIdentical(a, b *dense.Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("dims %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if math.Float64bits(ca[i]) != math.Float64bits(cb[i]) {
				return fmt.Errorf("bit mismatch at (%d,%d): %v vs %v", i, j, ca[i], cb[i])
			}
		}
	}
	return nil
}

// TestE2ELoopbackBitIdentity round-trips sketches through a real HTTP
// server and asserts the result is bit-identical to executing the same plan
// directly, across distributions, RNG sources and worker counts.
func TestE2ELoopbackBitIdentity(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	configs := []struct {
		name string
		opts core.Options
	}{
		{"uniform-batch-w1", core.Options{Dist: rng.Uniform11, Source: rng.SourceBatchXoshiro, Workers: 1, Seed: 42}},
		{"rademacher-batch-w4", core.Options{Dist: rng.Rademacher, Source: rng.SourceBatchXoshiro, Workers: 4, Seed: 7}},
		{"gaussian-scalar-w2", core.Options{Dist: rng.Gaussian, Source: rng.SourceScalarXoshiro, Workers: 2, Seed: 99}},
		{"scaledint-philox-w3", core.Options{Dist: rng.ScaledInt, Source: rng.SourcePhilox, Workers: 3, Seed: 3}},
	}
	const d = 48
	for name, a := range e2eMatrices(t) {
		for _, cfg := range configs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				p, err := core.NewPlan(a, d, cfg.opts)
				if err != nil {
					t.Fatalf("NewPlan: %v", err)
				}
				defer p.Close()
				want := dense.NewMatrix(d, a.N)
				if _, err := p.Execute(want); err != nil {
					t.Fatalf("direct Execute: %v", err)
				}

				got, stats, err := c.Sketch(context.Background(), a, d, cfg.opts)
				if err != nil {
					t.Fatalf("client Sketch: %v", err)
				}
				if err := bitIdentical(want, got); err != nil {
					t.Fatalf("served sketch differs from direct: %v", err)
				}
				if a.NNZ() > 0 && stats.Samples == 0 {
					t.Error("served stats lost Samples")
				}
			})
		}
	}
}

// TestE2EBatch round-trips a mixed batch: every item must come back
// index-aligned and bit-identical to its direct execution.
func TestE2EBatch(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	ms := e2eMatrices(t)
	opts := core.Options{Dist: rng.Rademacher, Seed: 123, Workers: 2}
	reqs := []wire.SketchRequest{
		{D: 16, Opts: opts, A: ms["powerlaw"]},
		{D: 8, Opts: opts, A: ms["emptycols"]},
		{D: 4, Opts: opts, A: ms["0xn"]},
	}
	rs, err := c.SketchBatch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("SketchBatch: %v", err)
	}
	for i, req := range reqs {
		if rs[i].Status != wire.StatusOK {
			t.Fatalf("item %d: %v (%s)", i, rs[i].Status, rs[i].Detail)
		}
		p, err := core.NewPlan(req.A, req.D, req.Opts)
		if err != nil {
			t.Fatal(err)
		}
		want := dense.NewMatrix(req.D, req.A.N)
		if _, err := p.Execute(want); err != nil {
			t.Fatal(err)
		}
		p.Close()
		if err := bitIdentical(want, rs[i].Ahat); err != nil {
			t.Errorf("batch item %d differs from direct: %v", i, err)
		}
	}
}

// TestE2EConcurrentAlternatingMatrices hammers one server from several
// goroutines alternating between two same-shaped but different-valued
// matrices. The server decodes requests into pooled scratch whose backing
// arrays are reused across requests, so a cached plan must own a private
// copy of its matrix: an aliasing plan races against later decodes (caught
// under -race) and serves the sketch of whatever matrix was decoded last
// into the shared arrays (caught by the bit-identity check).
func TestE2EConcurrentAlternatingMatrices(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})

	const d = 16
	opts := core.Options{Dist: rng.Rademacher, Seed: 9, Workers: 2}
	mats := []*sparse.CSC{
		sparse.RandomUniform(400, 60, 0.05, 21),
		sparse.RandomUniform(400, 60, 0.05, 22),
	}
	want := make([]*dense.Matrix, len(mats))
	for i, a := range mats {
		p, err := core.NewPlan(a, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = dense.NewMatrix(d, a.N)
		if _, err := p.Execute(want[i]); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := client.New(base, client.Config{})
			for it := 0; it < 12; it++ {
				i := (g + it) % len(mats)
				got, _, err := c.Sketch(context.Background(), mats[i], d, opts)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if err := bitIdentical(want[i], got); err != nil {
					t.Errorf("goroutine %d iter %d: cached plan served the wrong matrix: %v", g, it, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// waitFor polls cond for up to 5s — used to line up the overload window.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestE2EOverloadShedAndRetry pins the backpressure path end to end: with
// the single admission slot held and the queue full, a no-retry client is
// shed with ErrOverloaded immediately, while a retrying client backs off
// and succeeds once the blocker drains.
func TestE2EOverloadShedAndRetry(t *testing.T) {
	base, svc, _ := startServer(t,
		service.Config{MaxInFlight: 1, MaxQueue: 1, Capacity: 8},
		Config{})

	// Blocker: a deliberately expensive single-worker sketch that owns the
	// one admission slot for a while. ~200M samples keeps the slot busy
	// long enough to probe even without the race detector's slowdown.
	heavy := sparse.RandomUniform(2000, 200, 0.25, 17)
	small := sparse.PowerLaw(200, 40, 800, 1.0, 3)
	smallOpts := core.Options{Dist: rng.Rademacher, Seed: 5, Workers: 2}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, _, err := svc.Sketch(context.Background(), heavy, 2000, core.Options{Workers: 1, Seed: 1}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, "blocker in flight", func() bool { return svc.Stats().InFlight >= 1 })
	go func() {
		defer wg.Done()
		if _, _, err := svc.Sketch(context.Background(), small, 8, smallOpts); err != nil {
			t.Errorf("queued waiter: %v", err)
		}
	}()
	waitFor(t, "waiter queued", func() bool { return svc.Stats().QueueDepth >= 1 })

	// Slot held + queue full: a client with retries disabled must surface
	// ErrOverloaded from its single attempt.
	noRetry := client.New(base, client.Config{MaxRetries: -1})
	_, _, err := noRetry.Sketch(context.Background(), small, 8, smallOpts)
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("no-retry client err = %v, want Is(service.ErrOverloaded)", err)
	}
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Code != wire.StatusOverloaded {
		t.Fatalf("no-retry client err = %#v, want *wire.StatusError{StatusOverloaded}", err)
	}

	// A retrying client hitting the same wall backs off until the blocker
	// drains, then succeeds.
	retrying := client.New(base, client.Config{
		MaxRetries:  400,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ahat, _, err := retrying.Sketch(ctx, small, 8, smallOpts)
	if err != nil {
		t.Fatalf("retrying client: %v", err)
	}
	if ahat.Rows != 8 || ahat.Cols != small.N {
		t.Fatalf("retrying client sketch dims %dx%d", ahat.Rows, ahat.Cols)
	}
	wg.Wait()

	if st := svc.Stats(); st.Rejections < 1 {
		t.Errorf("Rejections = %d, want >= 1", st.Rejections)
	}
}

// TestE2EInvalidInputStatuses pins the error taxonomy across the wire: bad
// requests come back as the canonical sentinels, not as blanket failures.
func TestE2EInvalidInputStatuses(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})
	a := sparse.RandomUniform(50, 10, 0.1, 1)

	if _, _, err := c.Sketch(context.Background(), a, 0, core.Options{}); !errors.Is(err, core.ErrInvalidSketchSize) {
		t.Errorf("d=0 err = %v, want Is(core.ErrInvalidSketchSize)", err)
	}
	// Negative option fields never reach the service: the codec itself
	// rejects them as malformed.
	if _, _, err := c.Sketch(context.Background(), a, 8, core.Options{Workers: -3}); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("negative workers err = %v, want Is(wire.ErrMalformed)", err)
	}
	// A sketch bigger than the server's MaxSketchBytes cap is refused as
	// bad options before any allocation.
	capped, _, _ := startServer(t, service.Config{}, Config{MaxSketchBytes: 1024})
	cc := client.New(capped, client.Config{})
	if _, _, err := cc.Sketch(context.Background(), a, 10000, core.Options{}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("oversized sketch err = %v, want Is(core.ErrBadOptions)", err)
	}
	// A structurally broken matrix is rejected at decode (the codec
	// re-validates) — still ErrMalformed→StatusMalformed, never a panic.
	bad := &sparse.CSC{M: 5, N: 2, ColPtr: []int{0, 9, 1}, RowIdx: []int{0}, Val: []float64{1}}
	if _, _, err := c.Sketch(context.Background(), bad, 8, core.Options{}); !errors.Is(err, wire.ErrMalformed) {
		t.Errorf("broken CSC err = %v, want Is(wire.ErrMalformed)", err)
	}
}

// TestE2EStatsEndpoint asserts /stats serves the histogram-backed
// percentiles and the server byte counters after traffic has flowed.
func TestE2EStatsEndpoint(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})
	a := sparse.RandomUniform(100, 30, 0.05, 9)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Sketch(context.Background(), a, 16, core.Options{Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	res, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if snap.Service.Requests != 3 {
		t.Errorf("Requests = %d, want 3", snap.Service.Requests)
	}
	if snap.LatencyP50us <= 0 || snap.LatencyP99us < snap.LatencyP50us {
		t.Errorf("percentiles p50=%dus p99=%dus", snap.LatencyP50us, snap.LatencyP99us)
	}
	// /stats reuses Stats.LatencyQuantile over the same snapshot.
	if want := snap.Service.LatencyQuantile(0.50).Microseconds(); snap.LatencyP50us != want {
		t.Errorf("LatencyP50us = %d, want %d from the snapshot helper", snap.LatencyP50us, want)
	}
	if snap.Server.Requests != 3 || snap.Server.BytesIn == 0 || snap.Server.BytesOut == 0 {
		t.Errorf("server counters = %+v", snap.Server)
	}
}

// TestE2EHealthzAndDrain asserts the lifecycle: healthy servers say ok,
// draining servers flip /healthz to 503 before the listener closes.
func TestE2EHealthzAndDrain(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	srv := New(svc, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	waitFor(t, "server accepting", func() bool {
		res, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		res.Body.Close()
		return res.StatusCode == http.StatusOK
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	// The handler keeps answering 503 for connections that raced shutdown.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", rec.Code)
	}
}
