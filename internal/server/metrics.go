package server

import (
	"strconv"

	"sketchsp/internal/obs"
)

// httpCodes are the statuses the sketch endpoint can actually emit (see
// httpStatus plus the 405 guard); anything else lands in the "other" series
// so the per-code family stays fixed-cardinality no matter what a proxy or
// future handler does.
var httpCodes = [...]int{200, 400, 405, 429, 499, 500, 503, 504}

// httpMetrics is the transport layer's metric set on the shared registry.
// Like the service metrics, these handles are the single home of the
// counters: /stats reads the same atomics /metrics scrapes.
type httpMetrics struct {
	requests    *obs.Counter
	badRequests *obs.Counter
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter

	byCode    map[int]*obs.Counter // responses per HTTP status
	codeOther *obs.Counter

	decode  *obs.Histogram // body read + frame split + payload decode
	execute *obs.Histogram // service call (admission + cache + kernel)
	encode  *obs.Histogram // response encode + frame write
}

func newHTTPMetrics(r *obs.Registry) *httpMetrics {
	m := &httpMetrics{
		requests: r.Counter("sketchsp_http_requests_total",
			"Sketch requests received (batch items count individually)."),
		badRequests: r.Counter("sketchsp_http_bad_requests_total",
			"Request bodies rejected before reaching the service."),
		bytesIn: r.Counter("sketchsp_http_request_bytes_total",
			"Request body bytes consumed."),
		bytesOut: r.Counter("sketchsp_http_response_bytes_total",
			"Response body bytes written."),
		byCode: make(map[int]*obs.Counter, len(httpCodes)),
		codeOther: r.LabeledCounter("sketchsp_http_responses_total",
			`code="other"`, "Responses written to the sketch endpoint, by HTTP status."),
		decode: r.Histogram("sketchsp_http_decode_seconds",
			"Request decode stage: body read, frame split, payload decode."),
		execute: r.Histogram("sketchsp_http_execute_seconds",
			"Service execute stage: admission, plan cache, kernel."),
		encode: r.Histogram("sketchsp_http_encode_seconds",
			"Response encode stage: payload append, frame, write."),
	}
	for _, c := range httpCodes {
		m.byCode[c] = r.LabeledCounter("sketchsp_http_responses_total",
			`code="`+strconv.Itoa(c)+`"`,
			"Responses written to the sketch endpoint, by HTTP status.")
	}
	return m
}

// countCode attributes one response to its HTTP status series. Map lookup
// on a pre-built fixed map: no allocation on the hot path.
func (m *httpMetrics) countCode(code int) {
	if c, ok := m.byCode[code]; ok {
		c.Inc()
		return
	}
	m.codeOther.Inc()
}
