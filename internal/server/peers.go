package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"sketchsp/internal/service"
)

// The /v1/peers admin endpoint is mounted only when the backend implements
// service.PeerAdmin (the shard coordinator). It is the operational face of
// dynamic membership: a worker can be drained out of the ring, replaced,
// and rejoined without restarting the coordinator or dropping in-flight
// requests.
//
//	GET    /v1/peers                 {"peers": ["http://w1:7464", ...]}
//	POST   /v1/peers  {"peer": url}  add url to the ring (idempotent)
//	DELETE /v1/peers?peer=url        remove url from the ring
//
// Every mutation answers with the post-change peer list, so a caller
// always observes the state its change produced. Errors are JSON
// {"error": "..."}: 404 for removing a non-member, 400 for everything
// else (empty peer name, removing the last worker).

// peersBodyLimit bounds the admin request body; a peer list is URLs, not
// matrices.
const peersBodyLimit = 1 << 20

func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	pa, ok := s.backend.(service.PeerAdmin)
	if !ok {
		// Unreachable through the mux (the route is mounted conditionally),
		// kept for embedders calling the handler directly.
		s.peersError(w, http.StatusNotFound, errors.New("backend has no peer administration"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.peersOK(w, pa)
	case http.MethodPost:
		peer, err := s.peerFromRequest(r)
		if err != nil {
			s.peersError(w, http.StatusBadRequest, err)
			return
		}
		if err := pa.AddPeer(peer); err != nil {
			s.peersError(w, http.StatusBadRequest, err)
			return
		}
		s.peersOK(w, pa)
	case http.MethodDelete:
		peer, err := s.peerFromRequest(r)
		if err != nil {
			s.peersError(w, http.StatusBadRequest, err)
			return
		}
		if err := pa.RemovePeer(peer); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, service.ErrUnknownPeer) {
				code = http.StatusNotFound
			}
			s.peersError(w, code, err)
			return
		}
		s.peersOK(w, pa)
	default:
		w.Header().Set("Allow", "GET, POST, DELETE")
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "GET, POST or DELETE only", http.StatusMethodNotAllowed)
	}
}

// peerFromRequest extracts the target peer from the ?peer= query parameter
// or a {"peer": "..."} JSON body — DELETE callers typically use the query,
// POST callers the body, but both forms work for both methods.
func (s *Server) peerFromRequest(r *http.Request) (string, error) {
	if p := r.URL.Query().Get("peer"); p != "" {
		return p, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, peersBodyLimit))
	if err != nil {
		return "", fmt.Errorf("reading body: %v", err)
	}
	if len(body) == 0 {
		return "", errors.New("no peer named: use ?peer= or a {\"peer\": ...} body")
	}
	var req struct {
		Peer string `json:"peer"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("bad JSON body: %v", err)
	}
	if req.Peer == "" {
		return "", errors.New("empty peer in body")
	}
	return req.Peer, nil
}

func (s *Server) peersOK(w http.ResponseWriter, pa service.PeerAdmin) {
	buf, err := json.Marshal(struct {
		Peers []string `json:"peers"`
	}{Peers: pa.Peers()})
	if err != nil {
		s.peersError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.met.countCode(http.StatusOK)
	w.Write(append(buf, '\n'))
}

func (s *Server) peersError(w http.ResponseWriter, code int, err error) {
	buf, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
	w.Header().Set("Content-Type", "application/json")
	s.met.countCode(code)
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}
