package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"sketchsp/internal/jobs"
	"sketchsp/internal/obs"
	"sketchsp/internal/service"
	"sketchsp/internal/solver"
	"sketchsp/internal/wire"
)

// This file is the HTTP face of the solver subsystem (DESIGN.md §13):
//
//	POST   /v1/solve      wire.MsgSolveRequest body. Small problems solve
//	                      synchronously and respond MsgSolveResponse;
//	                      requests flagged Async or larger than
//	                      Config.SolveSyncNNZ become jobs: the response is
//	                      202 Accepted with a Location header and a
//	                      MsgJobStatus body naming the job.
//	GET    /v1/jobs/{id}  MsgJobStatus: state, live iteration progress,
//	                      and — once terminal — the embedded solve
//	                      response (the solution for done, the error for
//	                      failed/cancelled). Unknown or expired IDs are
//	                      StatusJobNotFound (404).
//	DELETE /v1/jobs/{id}  cancel: a pending job dies immediately, a
//	                      running one has its context fired and the solver
//	                      observes it between LSQR iterations. Responds
//	                      with the post-cancel MsgJobStatus.
//
// The handlers require the backend to implement service.SolveBackend; a
// plain Backend answers StatusBadOptions. Async decode paths never borrow
// the pooled request scratch: a job outlives its HTTP request, so
// everything it references must be privately owned (DecodeSolveRequest
// allocates fresh slices, making the decoded request safe to retain).

// solveBackend resolves the solver surface, or fails the request.
func (s *Server) solveBackend(w http.ResponseWriter, typ wire.MsgType) (service.SolveBackend, bool) {
	sb, ok := s.backend.(service.SolveBackend)
	if !ok {
		s.met.badRequests.Inc()
		s.writeError(w, typ, wire.StatusBadOptions, "backend does not serve solve requests")
	}
	return sb, ok
}

// handleSolve serves POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sb, ok := s.solveBackend(w, wire.MsgSolveResponse)
	if !ok {
		return
	}
	s.met.requests.Inc()
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)

	dsp := obs.StartSpan(s.met.decode)
	body, err := s.readBody(sc, w, r)
	if err != nil {
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSolveResponse, wire.StatusOf(err), err.Error())
		return
	}
	typ, payload, _, err := wire.SplitFrame(body, int(s.cfg.MaxBodyBytes))
	if err == nil && typ != wire.MsgSolveRequest {
		err = fmt.Errorf("%w: unexpected message type %v", wire.ErrMalformed, typ)
	}
	var req *wire.SolveRequest
	if err == nil {
		req, err = wire.DecodeSolveRequest(payload)
	}
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSolveResponse, wire.StatusOf(err), err.Error())
		return
	}

	if req.Async || s.solveNNZ(req) > s.solveSyncNNZ() {
		s.serveSolveAsync(w, sb, req)
		return
	}

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSolveResponse, wire.StatusMalformed, err.Error())
		return
	}
	defer cancel()
	xsp := obs.StartSpan(s.met.execute)
	res, err := sb.Solve(ctx, solveServiceReq(req, nil))
	xsp.End()
	var resp *wire.SolveResponse
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		resp = &wire.SolveResponse{Status: wire.StatusOf(err), Detail: err.Error()}
	} else {
		resp = solveWireResp(res)
	}
	esp := obs.StartSpan(s.met.encode)
	out, err := wire.AppendFrame(sc.out[:0], wire.MsgSolveResponse, wire.AppendSolveResponse(nil, resp))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgSolveResponse, wire.StatusInternal, "response too large to frame: "+err.Error())
		return
	}
	sc.out = out
	s.writeFrame(w, httpStatus(resp.Status), sc.out)
	esp.End()
}

// serveSolveAsync submits the decoded request as a job and answers 202
// with the job's initial status. The job resolves by-reference
// fingerprints at execution time — a matrix evicted while the job queues
// fails the job with store.ErrNotFound, it does not fail the submit.
func (s *Server) serveSolveAsync(w http.ResponseWriter, sb service.SolveBackend, req *wire.SolveRequest) {
	jm := s.jobs
	if jm == nil {
		s.writeError(w, wire.MsgJobStatus, wire.StatusBadOptions, "async solve jobs are not enabled")
		return
	}
	id, err := jm.Submit(func(ctx context.Context, progress func(iter int, resid float64)) (any, int64, error) {
		res, err := sb.Solve(ctx, solveServiceReq(req, progress))
		if err != nil {
			return nil, 0, err
		}
		resp := solveWireResp(res)
		return resp, retainedBytes(resp), nil
	})
	if err != nil {
		s.writeError(w, wire.MsgJobStatus, wire.StatusOf(err), err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	js := &wire.JobStatus{Status: wire.StatusOK, ID: id, State: jobs.StatePending}
	frame, _ := wire.EncodeJobStatusFrame(js)
	s.writeFrame(w, http.StatusAccepted, frame)
}

// handleJob serves GET and DELETE /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jm := s.jobs
	if jm == nil {
		s.writeError(w, wire.MsgJobStatus, wire.StatusBadOptions, "async solve jobs are not enabled")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.ContainsRune(id, '/') {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgJobStatus, wire.StatusMalformed, "bad job path")
		return
	}
	s.met.requests.Inc()
	var snap jobs.Snapshot
	var ok bool
	switch r.Method {
	case http.MethodGet:
		snap, ok = jm.Get(id)
	case http.MethodDelete:
		snap, ok = jm.Cancel(id)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "GET or DELETE only", http.StatusMethodNotAllowed)
		return
	}
	if !ok {
		s.writeError(w, wire.MsgJobStatus, wire.StatusJobNotFound,
			fmt.Sprintf("no job %q (unknown, expired, or evicted)", id))
		return
	}
	frame, err := wire.EncodeJobStatusFrame(jobWireStatus(snap))
	if err != nil {
		s.writeError(w, wire.MsgJobStatus, wire.StatusInternal, "status too large to frame: "+err.Error())
		return
	}
	s.writeFrame(w, http.StatusOK, frame)
}

// solveNNZ is the problem-size measure of the sync/async threshold.
func (s *Server) solveNNZ(req *wire.SolveRequest) int {
	if req.ByRef {
		return req.Fp.NNZ
	}
	return len(req.A.Val)
}

func (s *Server) solveSyncNNZ() int {
	switch {
	case s.cfg.SolveSyncNNZ > 0:
		return s.cfg.SolveSyncNNZ
	case s.cfg.SolveSyncNNZ < 0:
		return -1 // every solve is a job (nnz is never negative)
	default:
		return DefaultSolveSyncNNZ
	}
}

// solveServiceReq maps the wire request onto the service surface.
func solveServiceReq(req *wire.SolveRequest, progress func(iter int, resid float64)) *service.SolveRequest {
	return &service.SolveRequest{
		Method: req.Method.SolverMethod(),
		A:      req.A,
		ByRef:  req.ByRef,
		Fp:     req.Fp,
		B:      req.B,
		Opts: solver.Options{
			Gamma:    req.Gamma,
			Sketch:   req.Opts,
			Atol:     req.Atol,
			MaxIters: req.MaxIters,
			SVDDrop:  req.SVDDrop,
			Progress: progress,
		},
		Rank:       req.Rank,
		Oversample: req.Oversample,
		PowerIters: req.PowerIters,
	}
}

// solveWireResp maps a service result onto the wire response.
func solveWireResp(res *service.SolveResult) *wire.SolveResponse {
	info, ok := wire.SolveInfoOf(res.Info, res.Residual, res.PrecondCached)
	if !ok {
		return &wire.SolveResponse{Status: wire.StatusInternal,
			Detail: fmt.Sprintf("method %v has no wire form", res.Info.Method)}
	}
	resp := &wire.SolveResponse{Status: wire.StatusOK, Info: info}
	if res.Factors != nil {
		resp.Factors = &wire.RSVDFactors{U: res.Factors.U, V: res.Factors.V, Sigma: res.Factors.Sigma}
	} else {
		resp.X = res.X
		if resp.X == nil {
			resp.X = []float64{}
		}
	}
	return resp
}

// jobWireStatus maps a job snapshot onto the wire form: done jobs embed
// their retained solve response, failed and cancelled jobs embed a non-OK
// response carrying the failure's wire status, live jobs carry progress
// only.
func jobWireStatus(snap jobs.Snapshot) *wire.JobStatus {
	js := &wire.JobStatus{
		Status: wire.StatusOK,
		ID:     snap.ID,
		State:  snap.State,
		Iters:  snap.Iters,
		Resid:  snap.Resid,
	}
	switch snap.State {
	case jobs.StateDone:
		if resp, ok := snap.Result.(*wire.SolveResponse); ok {
			js.Result = resp
		}
	case jobs.StateFailed, jobs.StateCancelled:
		if snap.Err != nil {
			js.Result = &wire.SolveResponse{Status: wire.StatusOf(snap.Err), Detail: snap.Err.Error()}
		}
	}
	return js
}

// retainedBytes estimates a finished response's resident footprint for the
// manager's result budget: the payload vectors plus a fixed overhead.
func retainedBytes(resp *wire.SolveResponse) int64 {
	b := int64(128)
	b += int64(len(resp.X)) * 8
	if f := resp.Factors; f != nil {
		b += f.U.MemoryBytes() + f.V.MemoryBytes() + int64(len(f.Sigma))*8
	}
	return b
}
