package server

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/jobs"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// The solve e2e suite pins the serving contract of DESIGN.md §13 over a
// real loopback connection: served answers are bit-identical to direct
// solver calls, the sync/async split is a transport detail the client
// hides, and the job lifecycle (progress, cancel, expiry, eviction race)
// behaves as the state machine promises.

// solveE2E builds a tall well-conditioned problem and the wire request +
// direct solver.Options that must describe the identical computation.
func solveE2E(seed int64, m, n int) (*sparse.CSC, []float64) {
	a := sparse.FixedRowNNZ(m, n, 6, seed)
	r := rand.New(rand.NewSource(seed + 1))
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(x, b)
	for i := range b {
		b[i] += 1e-3 * r.NormFloat64()
	}
	return a, b
}

func e2eSketchOpts() core.Options {
	return core.Options{Seed: 7, Dist: rng.Uniform11, Workers: 1}
}

// longProblem is an inconsistent continuous-valued system sized so LSQR
// neither converges (Atol 1e-300 in the request) nor drives ‖Aᵀr‖ to an
// exact zero — the solve spins until MaxIters or a cancel arrives.
func longProblem(seed int64) (*sparse.CSC, []float64) {
	a := sparse.RandomUniform(20000, 2000, 0.005, seed)
	r := rand.New(rand.NewSource(seed + 1))
	b := make([]float64, a.M)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return a, b
}

func vecBits(t *testing.T, label string, x, y []float64) {
	t.Helper()
	if len(x) != len(y) {
		t.Fatalf("%s: length %d vs %d", label, len(x), len(y))
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x", label, i, math.Float64bits(x[i]), math.Float64bits(y[i]))
		}
	}
}

// TestE2ESolveBitIdentity solves over the wire with every least-squares
// method and demands the exact bits of the corresponding direct call.
func TestE2ESolveBitIdentity(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})
	ctx := context.Background()

	tall, bTall := solveE2E(41, 400, 20)
	wideBase, _ := solveE2E(42, 200, 30)
	wide := wideBase.Transpose()
	r := rand.New(rand.NewSource(43))
	bWide := make([]float64, wide.M)
	for i := range bWide {
		bWide[i] = r.NormFloat64()
	}

	cases := []struct {
		method wire.SolveMethod
		a      *sparse.CSC
		b      []float64
	}{
		{wire.SolveSAPQR, tall, bTall},
		{wire.SolveSAPSVD, tall, bTall},
		{wire.SolveLSQRD, tall, bTall},
		{wire.SolveMinNorm, wide, bWide},
	}
	for _, tc := range cases {
		t.Run(tc.method.String(), func(t *testing.T) {
			resp, err := c.Solve(ctx, &wire.SolveRequest{
				Method: tc.method, A: tc.a, B: tc.b, Opts: e2eSketchOpts(),
			})
			if err != nil {
				t.Fatalf("served solve: %v", err)
			}
			want, info, err := solver.SolveContext(ctx, tc.method.SolverMethod(), tc.a, tc.b,
				solver.Options{Sketch: e2eSketchOpts()})
			if err != nil {
				t.Fatalf("direct solve: %v", err)
			}
			vecBits(t, "served vs direct x", resp.X, want)
			if !resp.Info.Converged || resp.Info.Iters != info.Iters {
				t.Fatalf("served info (converged=%v iters=%d) disagrees with direct (converged=%v iters=%d)",
					resp.Info.Converged, resp.Info.Iters, info.Converged, info.Iters)
			}
		})
	}
}

// TestE2ESolveRandSVD round-trips the factor response and pins it to the
// direct RandSVD bits.
func TestE2ESolveRandSVD(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})
	ctx := context.Background()
	a, _ := solveE2E(51, 300, 40)

	resp, err := c.Solve(ctx, &wire.SolveRequest{
		Method: wire.SolveRandSVD, A: a, Rank: 8, Oversample: 4, PowerIters: 1, Opts: e2eSketchOpts(),
	})
	if err != nil {
		t.Fatalf("served rsvd: %v", err)
	}
	want, err := solver.RandSVDContext(ctx, a, 8, 4, 1, e2eSketchOpts())
	if err != nil {
		t.Fatalf("direct rsvd: %v", err)
	}
	if resp.Factors == nil {
		t.Fatal("rsvd response has no factors")
	}
	if err := bitIdentical(resp.Factors.U, want.U); err != nil {
		t.Fatalf("U: %v", err)
	}
	if err := bitIdentical(resp.Factors.V, want.V); err != nil {
		t.Fatalf("V: %v", err)
	}
	vecBits(t, "sigma", resp.Factors.Sigma, want.Sigma)
}

// TestE2ESolveAsyncThreshold forces every solve through the job path with
// a 1-nnz sync threshold and checks all three async surfaces: the raw 202
// + Location handshake, the explicit SolveAsync/JobWait pair, and Solve's
// transparent polling — all returning the direct solver's exact bits.
func TestE2ESolveAsyncThreshold(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{SolveSyncNNZ: 1})
	c := client.New(base, client.Config{})
	ctx := context.Background()
	a, b := solveE2E(61, 400, 20)
	req := &wire.SolveRequest{Method: wire.SolveSAPQR, A: a, B: b, Opts: e2eSketchOpts()}
	want, _, err := solver.SolveContext(ctx, solver.MethodSAPQR, a, b, solver.Options{Sketch: e2eSketchOpts()})
	if err != nil {
		t.Fatal(err)
	}

	// Raw handshake: a large-by-threshold solve answers 202 with the job's
	// URL in Location and a pending JobStatus frame in the body.
	frame, err := wire.EncodeSolveRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(base+"/v1/solve", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := hr.Body.Read(body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", hr.StatusCode)
	}
	loc := hr.Header.Get("Location")
	if !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location %q, want /v1/jobs/ prefix", loc)
	}
	typ, payload, _, err := wire.SplitFrame(body[:n], 0)
	if err != nil || typ != wire.MsgJobStatus {
		t.Fatalf("202 body: type %v err %v, want MsgJobStatus", typ, err)
	}
	js, err := wire.DecodeJobStatus(payload)
	if err != nil {
		t.Fatal(err)
	}
	if loc != "/v1/jobs/"+js.ID {
		t.Fatalf("Location %q disagrees with body job ID %q", loc, js.ID)
	}
	got, err := c.JobWait(ctx, js.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	vecBits(t, "raw-202 job vs direct", got.X, want)

	// Explicit async pair.
	id, err := c.SolveAsync(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.JobWait(ctx, id, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	vecBits(t, "async job vs direct", got.X, want)

	// Transparent polling: Solve hides the queueing entirely.
	resp, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	vecBits(t, "transparent solve vs direct", resp.X, want)
}

// TestSolveSyncNNZResolution pins the threshold knob's three regimes:
// positive is taken literally, zero selects the default, negative forces
// every solve asynchronous.
func TestSolveSyncNNZResolution(t *testing.T) {
	for _, tc := range []struct{ cfg, want int }{
		{cfg: 500, want: 500},
		{cfg: 0, want: DefaultSolveSyncNNZ},
		{cfg: -1, want: -1},
	} {
		s := &Server{cfg: Config{SolveSyncNNZ: tc.cfg}}
		if got := s.solveSyncNNZ(); got != tc.want {
			t.Errorf("solveSyncNNZ(cfg=%d) = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}

// TestE2ESolveJobCancel cancels a deliberately unconvergeable solve
// mid-run: the job must report progress while running, reach
// StateCancelled after DELETE (proving the worker observed its context
// between LSQR iterations), and surface context.Canceled to JobWait.
func TestE2ESolveJobCancel(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{SolveSyncNNZ: 1})
	c := client.New(base, client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a, b := longProblem(71)
	id, err := c.SolveAsync(ctx, &wire.SolveRequest{
		Method: wire.SolveLSQRD, A: a, B: b, Opts: e2eSketchOpts(),
		Atol: 1e-300, MaxIters: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running with progress", func() bool {
		js, err := c.JobStatus(ctx, id)
		return err == nil && js.State == jobs.StateRunning && js.Iters > 0
	})
	post, err := c.CancelJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if post.State.Terminal() && post.State != jobs.StateCancelled {
		t.Fatalf("post-cancel state %v", post.State)
	}
	waitFor(t, "job cancelled", func() bool {
		js, err := c.JobStatus(ctx, id)
		return err == nil && js.State == jobs.StateCancelled
	})
	if _, err := c.JobWait(ctx, id, time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("JobWait after cancel = %v, want context.Canceled", err)
	}
}

// TestE2ESolveJobExpiry covers the two ways a job ID stops resolving:
// never existed, and TTL-expired after completion. Both must unwrap to
// jobs.ErrNotFound across the wire.
func TestE2ESolveJobExpiry(t *testing.T) {
	base, _, _ := startServer(t, service.Config{},
		Config{SolveSyncNNZ: 1, Jobs: jobs.Config{ResultTTL: 200 * time.Millisecond}})
	c := client.New(base, client.Config{})
	ctx := context.Background()

	if _, err := c.JobStatus(ctx, "no-such-job"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("unknown job = %v, want jobs.ErrNotFound", err)
	}

	a, b := solveE2E(81, 400, 20)
	id, err := c.SolveAsync(ctx, &wire.SolveRequest{Method: wire.SolveLSQRD, A: a, B: b, Opts: e2eSketchOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobWait(ctx, id, time.Millisecond); err != nil {
		t.Fatalf("job did not finish cleanly: %v", err)
	}
	waitFor(t, "job expired", func() bool {
		_, err := c.JobStatus(ctx, id)
		return errors.Is(err, jobs.ErrNotFound)
	})
}

// TestE2ESolveEvictionRace pins the async-job eviction race: a by-ref
// solve admitted while its matrix is resident, but executed after the
// store evicted it, fails with store.ErrNotFound — resolution happens at
// execution time, not admission time.
func TestE2ESolveEvictionRace(t *testing.T) {
	a, b := solveE2E(91, 400, 20)
	other, _ := solveE2E(92, 400, 20)
	budget := other.MemoryBytes() + a.MemoryBytes()/2
	base, svc, _ := startServer(t, service.Config{StoreBytes: budget},
		Config{SolveSyncNNZ: 1, Jobs: jobs.Config{Workers: 1}})
	c := client.New(base, client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.PutMatrix(ctx, a); err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker with an unconvergeable solve so the by-ref
	// job stays queued while the store churns.
	blockA, blockB := longProblem(93)
	blocker, err := c.SolveAsync(ctx, &wire.SolveRequest{
		Method: wire.SolveLSQRD, A: blockA, B: blockB, Opts: e2eSketchOpts(),
		Atol: 1e-300, MaxIters: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool {
		js, err := c.JobStatus(ctx, blocker)
		return err == nil && js.State == jobs.StateRunning
	})
	victim, err := c.SolveAsync(ctx, &wire.SolveRequest{
		Method: wire.SolveLSQRD, ByRef: true, Fp: a.Fingerprint(), B: b, Opts: e2eSketchOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutMatrix(ctx, other); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim matrix evicted", func() bool {
		return !svc.Store().Contains(a.Fingerprint())
	})
	if _, err := c.CancelJob(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobWait(ctx, victim, time.Millisecond); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("evicted by-ref job = %v, want store.ErrNotFound", err)
	}
}

// TestE2ESolveOnPlainBackend checks capability gating: a backend that only
// sketches answers /v1/solve and /v1/jobs/ with bad-options, not a panic
// or a hang.
func TestE2ESolveOnPlainBackend(t *testing.T) {
	svc := service.New(service.Config{})
	srv := NewBackend(plainBackend{svc: svc}, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
		svc.Close()
	})
	c := client.New("http://"+l.Addr().String(), client.Config{})
	ctx := context.Background()

	a, b := solveE2E(95, 60, 10)
	if _, err := c.Solve(ctx, &wire.SolveRequest{Method: wire.SolveLSQRD, A: a, B: b, Opts: e2eSketchOpts()}); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("solve on plain backend = %v, want core.ErrBadOptions", err)
	}
	if _, err := c.JobStatus(ctx, "any"); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("job status on plain backend = %v, want core.ErrBadOptions", err)
	}
}
