// Package server fronts the concurrent sketch service over HTTP: it is the
// network face of the paper's traffic-shape win. A request body carries the
// compact CSC payload plus a seed and distribution — never the dense random
// matrix S — and the response carries only the small d×n sketch Â, so a
// remote sketch moves O(nnz(A) + d·n) bytes while the server regenerates
// the O(d·m) matrix S on the fly inside the cached plan's kernels.
//
// Endpoints:
//
//	POST /v1/sketch   wire.MsgSketchRequest, wire.MsgBatchRequest or
//	                  wire.MsgSketchRef body; responds with the matching
//	                  response frame. The HTTP status mirrors the wire
//	                  status (200 OK, 400 invalid, 404 unknown fingerprint,
//	                  429 overloaded, 503 draining/closed, 504 deadline),
//	                  but clients should classify by the wire status — it
//	                  survives proxies that rewrite HTTP codes.
//	PUT  /v1/matrix   upload a matrix into the content-addressed store;
//	PATCH /v1/matrix/{fp}  apply a sparse delta — see matrix.go.
//	GET  /healthz     "ok" while serving, 503 once draining.
//	GET  /stats       JSON snapshot: the service counters, the raw log₂
//	                  latency histogram with p50/p90/p95/p99 (via
//	                  service.Stats.LatencyQuantile — one home for the
//	                  bucket math), and the server's own transport counters.
//	GET  /metrics     Prometheus text exposition (obs.Registry.WriteText) of
//	                  the same atomics /stats reads: the service families,
//	                  the plan execute families, and the sketchsp_http_*
//	                  transport families (per-status response counters and
//	                  decode/execute/encode stage histograms).
//	GET  /debug/pprof/*  net/http/pprof, mounted only when Config.Pprof is
//	                  set (the daemon's -pprof flag).
//
// Backpressure and lifecycle compose with the layers below: admission
// control and shedding live in service.Service (ErrOverloaded becomes
// StatusOverloaded, the only retryable status); per-request deadlines —
// the tighter of Config.RequestTimeout and the client's
// X-Sketchsp-Timeout-Ms header — ride the request context into
// Plan.ExecuteContext, so a dead client stops burning worker time; and
// Shutdown drains in-flight requests before the daemon releases the
// service's cached plans.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sketchsp/internal/core"
	"sketchsp/internal/jobs"
	"sketchsp/internal/obs"
	"sketchsp/internal/service"
	"sketchsp/internal/wire"
)

// DefaultSolveSyncNNZ is the nnz(A) threshold above which POST /v1/solve
// answers 202 Accepted and runs the solve as a job instead of holding the
// connection open.
const DefaultSolveSyncNNZ = 1 << 20

// Config sizes the HTTP layer. The zero value selects the defaults.
type Config struct {
	// MaxBodyBytes bounds a request body (enforced with
	// http.MaxBytesReader before any decoding). 0 selects 1 GiB.
	MaxBodyBytes int64
	// MaxSketchBytes bounds the d×n response a single request may demand
	// (8·d·n bytes); beyond it the request is rejected with
	// StatusBadOptions instead of allocating. 0 selects 1 GiB.
	MaxSketchBytes int64
	// RequestTimeout, when positive, caps every request's deadline. A
	// client-supplied X-Sketchsp-Timeout-Ms header can only tighten it.
	RequestTimeout time.Duration
	// Metrics is the registry /metrics serves and the transport families
	// register on. nil selects the service's own registry, which is the
	// right default: one registry per serving stack, so the scrape carries
	// the HTTP, service and plan families together.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: profiling endpoints on a serving port are an operator
	// decision (the daemon's -pprof flag).
	Pprof bool
	// SolveSyncNNZ is the matrix-size threshold (in nonzeros) above which
	// POST /v1/solve becomes a job even without the Async flag. 0 selects
	// DefaultSolveSyncNNZ; negative forces every solve asynchronous.
	SolveSyncNNZ int
	// Jobs sizes the async solve job manager (workers, queue, result TTL
	// and budget). A nil Jobs.Metrics inherits Config.Metrics. Only used
	// when the backend implements service.SolveBackend.
	Jobs jobs.Config
}

// Server is the HTTP serving layer over a service.Backend. Create with New
// (local plan-cache service) or NewBackend (any Backend — the shard
// coordinator's path), mount Handler (or use Serve/Shutdown for the daemon
// lifecycle).
type Server struct {
	svc     *service.Service // non-nil only in New mode; /stats reads it
	backend service.Backend
	cfg     Config
	mux     *http.ServeMux

	httpMu   sync.Mutex
	httpSrv  *http.Server
	draining atomic.Bool

	// Transport counters and stage histograms (metrics.go), exposed under
	// "server" in /stats and as sketchsp_http_* in /metrics — one set of
	// atomics behind both views.
	met *httpMetrics

	// Async solve jobs (solve.go): created only when the backend
	// implements service.SolveBackend, nil otherwise.
	jobs *jobs.Manager

	scratch sync.Pool // *reqScratch
}

// reqScratch is the pooled per-request workspace: the body buffer, the
// decoded request (whose CSC slices are reused across requests), and the
// response encode buffer. Single-request hot path only — batches allocate.
type reqScratch struct {
	body  []byte
	req   wire.SketchRequest
	shreq wire.ShardRequest
	out   []byte
}

// New returns a Server fronting the local plan-cache service svc.
func New(svc *service.Service, cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = svc.Registry()
	}
	s := newServer(svc, cfg)
	s.svc = svc
	return s
}

// NewBackend returns a Server fronting an arbitrary Backend — this is how a
// shard coordinator becomes a sketchd: the handler, codec, deadline and
// drain layers are identical, only the execution strategy behind
// Backend.Sketch differs. The /stats service block is zero in this mode
// (the backend's own metrics live in cfg.Metrics, served at /metrics).
func NewBackend(b service.Backend, cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return newServer(b, cfg)
}

func newServer(b service.Backend, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	if cfg.MaxSketchBytes <= 0 {
		cfg.MaxSketchBytes = 1 << 30
	}
	s := &Server{backend: b, cfg: cfg, mux: http.NewServeMux(),
		met: newHTTPMetrics(cfg.Metrics)}
	s.scratch.New = func() interface{} { return new(reqScratch) }
	if _, ok := b.(service.SolveBackend); ok {
		jcfg := cfg.Jobs
		if jcfg.Metrics == nil {
			jcfg.Metrics = cfg.Metrics
		}
		s.jobs = jobs.New(jcfg)
	}
	s.mux.HandleFunc("/v1/sketch", s.handleSketch)
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/v1/matrix", s.handleMatrixPut)
	s.mux.HandleFunc("/v1/matrix/", s.handleMatrixPatch)
	if _, ok := b.(service.PeerAdmin); ok {
		s.mux.HandleFunc("/v1/peers", s.handlePeers)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.Handle("/metrics", cfg.Metrics.Handler())
	if cfg.Pprof {
		// Explicit wiring: the package's init only registers on
		// http.DefaultServeMux, which this server never serves.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like http.Server.Serve.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// Shutdown drains gracefully: /healthz flips to 503 (so load balancers
// stop routing here), listeners close, and in-flight requests get until
// ctx's deadline to finish. Once HTTP has drained the job manager is
// closed — queued jobs cancel, running ones have their contexts fired.
// The service itself is left to the caller — the daemon closes it after
// the drain so executing plans stay alive.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if s.jobs != nil {
		s.jobs.Close()
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// requestContext applies the effective deadline: the tighter of the server
// cap and the client's X-Sketchsp-Timeout-Ms header.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	timeout := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Sketchsp-Timeout-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("%w: bad X-Sketchsp-Timeout-Ms %q", wire.ErrMalformed, h)
		}
		d := time.Duration(ms) * time.Millisecond
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		return ctx, cancel, nil
	}
	return ctx, func() {}, nil
}

// httpStatus maps a wire status onto the closest HTTP status code.
func httpStatus(st wire.Status) int {
	switch st {
	case wire.StatusOK:
		return http.StatusOK
	case wire.StatusOverloaded:
		return http.StatusTooManyRequests
	case wire.StatusClosed:
		return http.StatusServiceUnavailable
	case wire.StatusDeadlineExceeded:
		return http.StatusGatewayTimeout
	case wire.StatusCanceled:
		return 499 // client closed request (nginx convention)
	case wire.StatusInternal:
		return http.StatusInternalServerError
	case wire.StatusNotFound, wire.StatusJobNotFound:
		return http.StatusNotFound
	default: // invalid matrix / sketch size / options / malformed bytes
		return http.StatusBadRequest
	}
}

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)

	// The decode span covers the whole request-parsing stage — body read,
	// frame split, payload decode — and is handed down so the per-payload
	// decoders can close it; error paths close it here.
	dsp := obs.StartSpan(s.met.decode)
	body, err := s.readBody(sc, w, r)
	if err != nil {
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusOf(err), err.Error())
		return
	}
	typ, payload, _, err := wire.SplitFrame(body, int(s.cfg.MaxBodyBytes))
	if err != nil {
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusOf(err), err.Error())
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusMalformed, err.Error())
		return
	}
	defer cancel()

	switch typ {
	case wire.MsgSketchRequest:
		s.serveSingle(ctx, w, sc, payload, dsp)
	case wire.MsgBatchRequest:
		s.serveBatch(ctx, w, payload, dsp)
	case wire.MsgShardRequest:
		s.serveShard(ctx, w, sc, payload, dsp)
	case wire.MsgShardBatchRequest:
		s.serveShardBatch(ctx, w, payload, dsp)
	case wire.MsgSketchRef:
		s.serveSketchRef(ctx, w, sc, payload, dsp)
	default:
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusMalformed,
			fmt.Sprintf("unexpected message type %v", typ))
	}
}

// readBody consumes the request body into the pooled buffer under the
// MaxBodyBytes bound.
func (s *Server) readBody(sc *reqScratch, w http.ResponseWriter, r *http.Request) ([]byte, error) {
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := sc.body[:0]
	if n := r.ContentLength; n > 0 && n <= s.cfg.MaxBodyBytes && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return nil, fmt.Errorf("%w: body exceeds %d bytes", wire.ErrTooLarge, s.cfg.MaxBodyBytes)
			}
			return nil, fmt.Errorf("%w: reading body: %v", wire.ErrMalformed, err)
		}
	}
	sc.body = buf
	s.met.bytesIn.Add(int64(len(buf)))
	return buf, nil
}

// serveSingle handles one MsgSketchRequest payload on the pooled hot path.
func (s *Server) serveSingle(ctx context.Context, w http.ResponseWriter, sc *reqScratch, payload []byte, dsp obs.Span) {
	s.met.requests.Inc()
	err := wire.DecodeRequestInto(&sc.req, payload)
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusMalformed, err.Error())
		return
	}
	xsp := obs.StartSpan(s.met.execute)
	resp := s.sketchOne(ctx, &sc.req)
	xsp.End()
	esp := obs.StartSpan(s.met.encode)
	out, err := wire.AppendFrame(sc.out[:0], wire.MsgSketchResponse, wire.AppendResponse(nil, &resp))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusInternal, "response too large to frame: "+err.Error())
		return
	}
	sc.out = out
	s.writeFrame(w, httpStatus(resp.Status), sc.out)
	esp.End()
}

// serveShard handles one MsgShardRequest payload: the shard's CSC runs
// through the same backend as a single request — a worker needs no special
// mode, any sketchd answers shard requests — and the response echoes the
// shard's placement J0 so the coordinator's merge is robust to reordering.
func (s *Server) serveShard(ctx context.Context, w http.ResponseWriter, sc *reqScratch, payload []byte, dsp obs.Span) {
	s.met.requests.Inc()
	err := wire.DecodeShardRequestInto(&sc.shreq, payload)
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgShardResponse, wire.StatusMalformed, err.Error())
		return
	}
	req := &sc.shreq
	if err := s.checkSketchSize(req.D, req.A.N); err != nil {
		s.writeError(w, wire.MsgShardResponse, wire.StatusBadOptions, err.Error())
		return
	}
	xsp := obs.StartSpan(s.met.execute)
	partial, st, err := s.backend.Sketch(ctx, req.A, req.D, req.Opts)
	xsp.End()
	var resp wire.ShardResponse
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		resp = wire.ShardResponse{Status: wire.StatusOf(err), Detail: err.Error()}
	} else {
		resp = wire.ShardResponse{Status: wire.StatusOK, J0: req.J0, Stats: st, Partial: partial}
	}
	esp := obs.StartSpan(s.met.encode)
	out, err := wire.AppendFrame(sc.out[:0], wire.MsgShardResponse, wire.AppendShardResponse(nil, &resp))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgShardResponse, wire.StatusInternal, "response too large to frame: "+err.Error())
		return
	}
	sc.out = out
	s.writeFrame(w, httpStatus(resp.Status), sc.out)
	esp.End()
}

// serveShardBatch handles one MsgShardBatchRequest payload: several column
// shards of one sketch, batched by the coordinator because they all route
// here. The items run through the same backend SketchBatch path as a plain
// batch — grouped by plan key, so same-matrix shards resolve the cache once
// — and each response echoes its shard's J0 for the coordinator's placement
// check.
//
// Decoding is deliberately per-item, not the strict whole-batch decoder: a
// batch-level StatusMalformed is what a pre-batch server answers for the
// unknown frame type, and the coordinator demotes it to failover — so it
// must mean "this peer cannot read the frame", never "one item was bad".
// An item that fails to decode gets its own StatusMalformed response
// (fail-fast at the coordinator, like the single-shard path) and is never
// executed, so it cannot contribute coverage. Only envelope corruption and
// cross-item placement violations — one matrix, sorted pairwise-disjoint
// column ranges, which a real coordinator never produces — are rejected at
// batch level.
func (s *Server) serveShardBatch(ctx context.Context, w http.ResponseWriter, payload []byte, dsp obs.Span) {
	items, err := wire.SplitBatchPayload(payload)
	if err == nil && len(items) == 0 {
		err = fmt.Errorf("%w: empty shard batch", wire.ErrMalformed)
	}
	if err != nil {
		dsp.End()
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgShardBatchResponse, wire.StatusMalformed, err.Error())
		return
	}
	reqs := make([]wire.ShardRequest, len(items))
	itemErr := make([]error, len(items))
	nTotal, nextJ0 := -1, 0
	for i, item := range items {
		if derr := wire.DecodeShardRequestInto(&reqs[i], item); derr != nil {
			itemErr[i] = derr
			continue
		}
		if nTotal == -1 {
			nTotal = reqs[i].NTotal
		}
		if reqs[i].NTotal != nTotal || reqs[i].J0 < nextJ0 {
			dsp.End()
			s.met.badRequests.Inc()
			s.writeError(w, wire.MsgShardBatchResponse, wire.StatusMalformed,
				fmt.Sprintf("shard batch item %d: placement overlaps or mixes matrices", i))
			return
		}
		nextJ0 = reqs[i].J0 + reqs[i].A.N
	}
	dsp.End()
	s.met.requests.Add(int64(len(reqs)))
	sreqs := make([]service.Request, len(reqs))
	oversize := make([]bool, len(reqs))
	for i := range reqs {
		if itemErr[i] != nil {
			continue
		}
		if err := s.checkSketchSize(reqs[i].D, reqs[i].A.N); err != nil {
			oversize[i] = true
			continue
		}
		sreqs[i] = service.Request{A: reqs[i].A, D: reqs[i].D, Opts: reqs[i].Opts}
	}
	xsp := obs.StartSpan(s.met.execute)
	sresps := s.backend.SketchBatch(ctx, sreqs)
	xsp.End()
	out := make([]wire.ShardResponse, len(reqs))
	for i := range out {
		switch {
		case itemErr[i] != nil:
			out[i] = wire.ShardResponse{Status: wire.StatusMalformed, Detail: itemErr[i].Error()}
		case oversize[i]:
			out[i] = wire.ShardResponse{Status: wire.StatusBadOptions,
				Detail: fmt.Sprintf("sketch %dx%d exceeds MaxSketchBytes %d", reqs[i].D, reqs[i].A.N, s.cfg.MaxSketchBytes)}
		case sresps[i].Err != nil:
			err := sresps[i].Err
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			out[i] = wire.ShardResponse{Status: wire.StatusOf(err), Detail: err.Error()}
		default:
			out[i] = wire.ShardResponse{Status: wire.StatusOK, J0: reqs[i].J0,
				Stats: sresps[i].Stats, Partial: sresps[i].Ahat}
		}
	}
	esp := obs.StartSpan(s.met.encode)
	frame, err := wire.AppendFrame(nil, wire.MsgShardBatchResponse, wire.AppendShardBatchResponse(nil, out))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgShardBatchResponse, wire.StatusInternal, "shard batch response too large to frame: "+err.Error())
		return
	}
	s.writeFrame(w, http.StatusOK, frame)
	esp.End()
}

// serveBatch handles one MsgBatchRequest payload: the requests are mapped
// onto service.SketchBatch, which groups them by plan key so a batch of
// same-matrix sketches resolves the cache once and executes back-to-back
// on the hot plan.
func (s *Server) serveBatch(ctx context.Context, w http.ResponseWriter, payload []byte, dsp obs.Span) {
	reqs, err := wire.DecodeBatchRequest(payload)
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgBatchResponse, wire.StatusMalformed, err.Error())
		return
	}
	s.met.requests.Add(int64(len(reqs)))
	sreqs := make([]service.Request, len(reqs))
	oversize := make([]bool, len(reqs))
	for i := range reqs {
		if err := s.checkSketchSize(reqs[i].D, reqs[i].A.N); err != nil {
			oversize[i] = true
			continue
		}
		sreqs[i] = service.Request{A: reqs[i].A, D: reqs[i].D, Opts: reqs[i].Opts}
	}
	xsp := obs.StartSpan(s.met.execute)
	sresps := s.backend.SketchBatch(ctx, sreqs)
	xsp.End()
	out := make([]wire.SketchResponse, len(reqs))
	for i := range out {
		switch {
		case oversize[i]:
			out[i] = wire.SketchResponse{Status: wire.StatusBadOptions,
				Detail: fmt.Sprintf("sketch %dx%d exceeds MaxSketchBytes %d", reqs[i].D, reqs[i].A.N, s.cfg.MaxSketchBytes)}
		case sresps[i].Err != nil:
			st := wire.StatusOf(sresps[i].Err)
			out[i] = wire.SketchResponse{Status: st, Detail: sresps[i].Err.Error()}
		default:
			out[i] = wire.SketchResponse{Status: wire.StatusOK, Stats: sresps[i].Stats, Ahat: sresps[i].Ahat}
		}
	}
	// A batch of near-MaxSketchBytes sketches can legitimately exceed the
	// 32-bit frame length; answer with a framable error instead of a
	// length-wrapped frame that would desync the client's decoder.
	esp := obs.StartSpan(s.met.encode)
	frame, err := wire.AppendFrame(nil, wire.MsgBatchResponse, wire.AppendBatchResponse(nil, out))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgBatchResponse, wire.StatusInternal, "batch response too large to frame: "+err.Error())
		return
	}
	s.writeFrame(w, http.StatusOK, frame)
	esp.End()
}

// sketchOne runs one request through the service and classifies the
// outcome. The response's Ahat is freshly allocated per request — it is
// being serialised right after, so pooling it would only add copying.
func (s *Server) sketchOne(ctx context.Context, req *wire.SketchRequest) wire.SketchResponse {
	if err := s.checkSketchSize(req.D, req.A.N); err != nil {
		return wire.SketchResponse{Status: wire.StatusBadOptions, Detail: err.Error()}
	}
	ahat, st, err := s.backend.Sketch(ctx, req.A, req.D, req.Opts)
	if err != nil {
		// Prefer the context's verdict when the deadline raced the
		// execute: the client asked for a bounded request and should see
		// the deadline status, not an internal cancellation artifact.
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		return wire.SketchResponse{Status: wire.StatusOf(err), Detail: err.Error()}
	}
	return wire.SketchResponse{Status: wire.StatusOK, Stats: st, Ahat: ahat}
}

// checkSketchSize bounds the response allocation 8·d·n.
func (s *Server) checkSketchSize(d, n int) error {
	if d > 0 && n > 0 && int64(d) > s.cfg.MaxSketchBytes/8/int64(n) {
		return fmt.Errorf("%w: sketch %dx%d exceeds MaxSketchBytes %d",
			core.ErrBadOptions, d, n, s.cfg.MaxSketchBytes)
	}
	return nil
}

// writeError emits a non-OK response frame of the given kind. Batch-shaped
// failures that happen before per-item decoding (malformed bytes, bad
// deadline header) come back as a single-element batch response so the
// client's decoder matches what it sent. The shard error form is
// byte-identical to the single form, so MsgShardResponse needs no branch.
func (s *Server) writeError(w http.ResponseWriter, typ wire.MsgType, st wire.Status, detail string) {
	resp := wire.SketchResponse{Status: st, Detail: detail}
	var payload []byte
	switch typ {
	case wire.MsgBatchResponse:
		payload = wire.AppendBatchResponse(nil, []wire.SketchResponse{resp})
	case wire.MsgShardBatchResponse:
		payload = wire.AppendShardBatchResponse(nil, []wire.ShardResponse{{Status: st, Detail: detail}})
	case wire.MsgMatrixInfo:
		payload = wire.AppendMatrixInfo(nil, &wire.MatrixInfo{Status: st, Detail: detail})
	case wire.MsgSolveResponse:
		payload = wire.AppendSolveResponse(nil, &wire.SolveResponse{Status: st, Detail: detail})
	case wire.MsgJobStatus:
		payload = wire.AppendJobStatus(nil, &wire.JobStatus{Status: st, Detail: detail})
	default:
		payload = wire.AppendResponse(nil, &resp)
	}
	// An error payload is a status byte plus a short detail string — it
	// cannot reach the frame limit, so the framing error is impossible.
	frame, _ := wire.AppendFrame(nil, typ, payload)
	s.writeFrame(w, httpStatus(st), frame)
}

func (s *Server) writeFrame(w http.ResponseWriter, httpCode int, frame []byte) {
	w.Header().Set("Content-Type", "application/x-sketchsp-wire")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(httpCode)
	s.met.countCode(httpCode)
	n, _ := w.Write(frame)
	s.met.bytesOut.Add(int64(n))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// StatsSnapshot is the /stats JSON document: the service snapshot (with
// its raw histogram), quantiles derived through the shared bucket math,
// and the HTTP layer's own counters. Durations are reported in
// microseconds for dashboard friendliness.
type StatsSnapshot struct {
	Service      service.Stats `json:"service"`
	LatencyP50us int64         `json:"latency_p50_us"`
	LatencyP90us int64         `json:"latency_p90_us"`
	LatencyP95us int64         `json:"latency_p95_us"`
	LatencyP99us int64         `json:"latency_p99_us"`
	Server       ServerStats   `json:"server"`
}

// ServerStats are the transport-level counters of the HTTP layer.
type ServerStats struct {
	Requests    int64 `json:"requests"`
	BadRequests int64 `json:"bad_requests"`
	BytesIn     int64 `json:"bytes_in"`
	BytesOut    int64 `json:"bytes_out"`
	Draining    bool  `json:"draining"`
}

// Stats returns the combined snapshot (also served at /stats). In NewBackend
// mode there is no local service; the service block stays zero (safe: the
// zero snapshot's LatencyQuantile is 0) and only the transport counters move.
func (s *Server) Stats() StatsSnapshot {
	var st service.Stats
	if s.svc != nil {
		st = s.svc.Stats()
	}
	return StatsSnapshot{
		Service:      st,
		LatencyP50us: st.LatencyQuantile(0.50).Microseconds(),
		LatencyP90us: st.LatencyQuantile(0.90).Microseconds(),
		LatencyP95us: st.LatencyQuantile(0.95).Microseconds(),
		LatencyP99us: st.LatencyQuantile(0.99).Microseconds(),
		Server: ServerStats{
			Requests:    s.met.requests.Value(),
			BadRequests: s.met.badRequests.Value(),
			BytesIn:     s.met.bytesIn.Value(),
			BytesOut:    s.met.bytesOut.Value(),
			Draining:    s.draining.Load(),
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	buf, err := json.MarshalIndent(s.Stats(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}
