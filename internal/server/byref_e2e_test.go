package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// These tests are the end-to-end half of the by-reference differential
// suite: the same PUT → sketch-by-fingerprint → PATCH flows exercised
// in-process against the service are driven here through a real HTTP
// server and the real client, so the wire codec, the router and the
// fallback logic are all in the loop.

// directAhat is the one-shot reference every served path must match.
func directAhat(t *testing.T, a *sparse.CSC, d int, opts core.Options) *dense.Matrix {
	t.Helper()
	p, err := core.NewPlan(a, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ahat := dense.NewMatrix(d, a.N)
	if _, err := p.Execute(ahat); err != nil {
		t.Fatal(err)
	}
	return ahat
}

// TestE2EByRefBitIdentity uploads each corpus matrix once and asserts the
// by-reference sketch — served entirely from the fingerprint — is
// bit-identical to the direct plan, across sketch families and sources.
func TestE2EByRefBitIdentity(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	configs := []struct {
		name string
		opts core.Options
	}{
		{"rademacher-batch", core.Options{Dist: rng.Rademacher, Source: rng.SourceBatchXoshiro, Workers: 2, Seed: 7}},
		{"gaussian-philox", core.Options{Dist: rng.Gaussian, Source: rng.SourcePhilox, Workers: 3, Seed: 99}},
		{"sjlt-batch", core.Options{Dist: rng.SJLT, Source: rng.SourceBatchXoshiro, Workers: 2, Seed: 5, Sparsity: 4}},
	}
	const d = 32
	for name, a := range e2eMatrices(t) {
		info, err := c.PutMatrix(context.Background(), a)
		if err != nil {
			t.Fatalf("PutMatrix(%s): %v", name, err)
		}
		if info.Fp != a.Fingerprint() {
			t.Fatalf("PutMatrix(%s) returned fp %v, want %v", name, info.Fp, a.Fingerprint())
		}
		if !info.Created {
			t.Errorf("PutMatrix(%s): first upload not Created", name)
		}
		// Idempotent: the re-upload finds the content resident.
		again, err := c.PutMatrix(context.Background(), a)
		if err != nil {
			t.Fatalf("re-PutMatrix(%s): %v", name, err)
		}
		if again.Created {
			t.Errorf("re-PutMatrix(%s): reported Created", name)
		}
		for _, cfg := range configs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				got, _, err := c.SketchRef(context.Background(), info.Fp, d, cfg.opts)
				if err != nil {
					t.Fatalf("SketchRef: %v", err)
				}
				if err := bitIdentical(directAhat(t, a, d, cfg.opts), got); err != nil {
					t.Fatalf("by-ref sketch differs from direct: %v", err)
				}
			})
		}
	}
}

// TestE2EByRefNotFoundAndCachedPayload pins the two halves of the repeat
// traffic story: an unknown fingerprint fails with store.ErrNotFound over
// the wire, SketchCached cures it with one upload, and from then on each
// request ships a fixed-size frame instead of the O(nnz) matrix body.
func TestE2EByRefNotFoundAndCachedPayload(t *testing.T) {
	base, _, srv := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	a := sparse.PowerLaw(2000, 300, 40000, 1.0, 13)
	opts := core.Options{Dist: rng.Rademacher, Seed: 21, Workers: 2}
	const d = 24

	if _, _, err := c.SketchRef(context.Background(), a.Fingerprint(), d, opts); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("SketchRef(unknown fp) err = %v, want Is(store.ErrNotFound)", err)
	}

	want := directAhat(t, a, d, opts)

	// First SketchCached: miss → upload → retry. Costs the matrix bytes.
	before := srv.Stats().Server.BytesIn
	got, _, err := c.SketchCached(context.Background(), a, d, opts)
	if err != nil {
		t.Fatalf("SketchCached (cold): %v", err)
	}
	if err := bitIdentical(want, got); err != nil {
		t.Fatalf("cold SketchCached differs from direct: %v", err)
	}
	coldBytes := srv.Stats().Server.BytesIn - before
	if floor := int64(16 * a.NNZ()); coldBytes < floor {
		t.Fatalf("cold path shipped %d bytes, expected at least the %d bytes of matrix values+indices",
			coldBytes, floor)
	}

	// Repeat SketchCached: resident fingerprint, one fixed-size frame.
	before = srv.Stats().Server.BytesIn
	got, _, err = c.SketchCached(context.Background(), a, d, opts)
	if err != nil {
		t.Fatalf("SketchCached (warm): %v", err)
	}
	if err := bitIdentical(want, got); err != nil {
		t.Fatalf("warm SketchCached differs from direct: %v", err)
	}
	warmBytes := srv.Stats().Server.BytesIn - before
	if warmBytes != int64(wire.SketchRefWireSize) {
		t.Errorf("warm path shipped %d bytes, want exactly wire.SketchRefWireSize = %d",
			warmBytes, wire.SketchRefWireSize)
	}
	if warmBytes > 1024 {
		t.Errorf("warm path shipped %d bytes, acceptance ceiling is 1 KB", warmBytes)
	}
}

// TestE2EByRefEviction forces the server's store to evict by uploading a
// second matrix into a budget sized for one, and asserts SketchCached
// transparently re-uploads the evicted content with unchanged bits.
func TestE2EByRefEviction(t *testing.T) {
	a := sparse.RandomUniform(400, 80, 0.05, 31)
	b := sparse.RandomUniform(400, 80, 0.05, 32)
	budget := a.MemoryBytes() + 16 // room for one resident matrix, not two
	base, _, _ := startServer(t, service.Config{StoreBytes: budget}, Config{})
	c := client.New(base, client.Config{})

	opts := core.Options{Dist: rng.CountSketch, Source: rng.SourcePhilox, Seed: 3, Workers: 2}
	const d = 16
	wantA := directAhat(t, a, d, opts)

	if _, _, err := c.SketchCached(context.Background(), a, d, opts); err != nil {
		t.Fatalf("seed upload of a: %v", err)
	}
	if _, err := c.PutMatrix(context.Background(), b); err != nil {
		t.Fatalf("upload of b: %v", err)
	}
	// b displaced a; the cached path must cure the NotFound invisibly.
	got, _, err := c.SketchCached(context.Background(), a, d, opts)
	if err != nil {
		t.Fatalf("SketchCached after eviction: %v", err)
	}
	if err := bitIdentical(wantA, got); err != nil {
		t.Fatalf("post-eviction re-upload changed bits: %v", err)
	}
}

// TestE2EPatchFlow drives the incremental-update path over the wire:
// PATCH makes A+ΔA addressable, sketches of the new fingerprint are
// bit-identical to a one-shot of the merged matrix, and the original
// fingerprint still serves its original answer.
func TestE2EPatchFlow(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	a, err := sparse.NewCSC(60, 8,
		[]int{0, 3, 5, 5, 8, 10, 12, 12, 14},
		[]int{1, 7, 30, 0, 59, 2, 9, 44, 11, 12, 3, 58, 20, 21},
		[]float64{1, -2, 3, 4, -5, 6, 7, -8, 9, 10, -11, 12, 13, -14})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := sparse.NewCSC(60, 8,
		[]int{0, 1, 1, 3, 4, 4, 4, 5, 5},
		[]int{7, 4, 18, 0, 33},
		[]float64{2, -1, 5, -4, 3}) // −4 at (0,3) cancels a's +4 exactly
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sparse.Add(a, delta)
	if err != nil {
		t.Fatal(err)
	}

	opts := core.Options{Dist: rng.Rademacher, Seed: 17, Workers: 2}
	const d = 20

	infoA, err := c.PutMatrix(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the sketch path for fp(A) so the server has something to advance.
	if _, _, err := c.SketchRef(context.Background(), infoA.Fp, d, opts); err != nil {
		t.Fatal(err)
	}

	infoSum, err := c.PatchMatrix(context.Background(), infoA.Fp, delta)
	if err != nil {
		t.Fatalf("PatchMatrix: %v", err)
	}
	if infoSum.Fp != sum.Fingerprint() {
		t.Fatalf("PATCH returned fp %v, want fingerprint of A+ΔA %v", infoSum.Fp, sum.Fingerprint())
	}

	got, _, err := c.SketchRef(context.Background(), infoSum.Fp, d, opts)
	if err != nil {
		t.Fatalf("SketchRef(A+ΔA): %v", err)
	}
	if err := bitIdentical(directAhat(t, sum, d, opts), got); err != nil {
		t.Fatalf("patched sketch differs from one-shot of A+ΔA: %v", err)
	}
	// Immutability: the pre-patch content still answers under its own fp.
	gotA, _, err := c.SketchRef(context.Background(), infoA.Fp, d, opts)
	if err != nil {
		t.Fatalf("SketchRef(A) after PATCH: %v", err)
	}
	if err := bitIdentical(directAhat(t, a, d, opts), gotA); err != nil {
		t.Fatalf("PATCH disturbed the original fingerprint: %v", err)
	}

	// PATCH against a fingerprint the server never saw → NotFound.
	if _, err := c.PatchMatrix(context.Background(), sparse.Fingerprint{M: 60, N: 8, NNZ: 1, Hash: 0xdead}, delta); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("PATCH unknown fp err = %v, want Is(store.ErrNotFound)", err)
	}
}

// TestE2EPatchPathFrameMismatch sends a raw PATCH whose URL fingerprint
// disagrees with the fingerprint inside the frame — the server must refuse
// it as malformed rather than trust either one.
func TestE2EPatchPathFrameMismatch(t *testing.T) {
	base, _, _ := startServer(t, service.Config{}, Config{})
	c := client.New(base, client.Config{})

	a := sparse.RandomUniform(50, 10, 0.1, 8)
	if _, err := c.PutMatrix(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	delta := &sparse.CSC{M: 50, N: 10, ColPtr: make([]int, 11)}
	body, err := wire.EncodeMatrixDeltaFrame(&wire.MatrixDelta{Fp: a.Fingerprint(), Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	other := sparse.Fingerprint{M: 50, N: 10, NNZ: 3, Hash: 0xbeef}
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/matrix/"+wire.FormatFingerprint(other), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched PATCH HTTP status = %d, want 400", res.StatusCode)
	}
	frame, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.SplitFrame(frame, 0)
	if err != nil {
		t.Fatalf("error body is not a wire frame: %v", err)
	}
	if typ != wire.MsgMatrixInfo {
		t.Fatalf("error frame type = %v, want MsgMatrixInfo", typ)
	}
	info, err := wire.DecodeMatrixInfo(payload)
	if err != nil {
		t.Fatalf("error body is not a MatrixInfo frame: %v", err)
	}
	if info.Status != wire.StatusMalformed {
		t.Errorf("status = %v, want StatusMalformed", info.Status)
	}
}

// plainBackend strips the Ref surface off a service, modelling an old
// worker build behind a new router.
type plainBackend struct{ svc *service.Service }

func (b plainBackend) Sketch(ctx context.Context, a *sparse.CSC, d int, opts core.Options) (*dense.Matrix, core.Stats, error) {
	return b.svc.Sketch(ctx, a, d, opts)
}
func (b plainBackend) SketchBatch(ctx context.Context, reqs []service.Request) []service.Response {
	return b.svc.SketchBatch(ctx, reqs)
}
func (b plainBackend) Close() { b.svc.Close() }

// TestE2EPlainBackendRefusesByRef pins the downgrade path: a server whose
// backend lacks the content-addressed surface answers every by-ref verb
// with StatusBadOptions instead of panicking or mis-routing.
func TestE2EPlainBackendRefusesByRef(t *testing.T) {
	svc := service.New(service.Config{})
	srv := NewBackend(plainBackend{svc: svc}, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
		svc.Close()
	})
	c := client.New("http://"+l.Addr().String(), client.Config{MaxRetries: -1})

	a := sparse.RandomUniform(50, 10, 0.1, 8)
	if _, err := c.PutMatrix(context.Background(), a); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("PutMatrix on plain backend err = %v, want Is(core.ErrBadOptions)", err)
	}
	if _, _, err := c.SketchRef(context.Background(), a.Fingerprint(), 8, core.Options{}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("SketchRef on plain backend err = %v, want Is(core.ErrBadOptions)", err)
	}
	if _, err := c.PatchMatrix(context.Background(), a.Fingerprint(), &sparse.CSC{M: 50, N: 10, ColPtr: make([]int, 11)}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("PatchMatrix on plain backend err = %v, want Is(core.ErrBadOptions)", err)
	}
	// The classic inline path is unaffected by the missing surface.
	if _, _, err := c.Sketch(context.Background(), a, 8, core.Options{Seed: 1}); err != nil {
		t.Errorf("inline Sketch on plain backend: %v", err)
	}
}
