package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"sketchsp/internal/obs"
	"sketchsp/internal/service"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// This file is the HTTP face of the content-addressed matrix layer
// (DESIGN.md §12):
//
//	PUT   /v1/matrix       wire.MsgMatrixPut body (the CSC payload).
//	                       Uploads A under its content fingerprint;
//	                       responds MsgMatrixInfo (fingerprint, resident
//	                       bytes, created flag). Idempotent by content.
//	PATCH /v1/matrix/{fp}  wire.MsgMatrixDelta body. Applies a sparse ΔA
//	                       to the stored matrix {fp}; responds
//	                       MsgMatrixInfo for the merged matrix's new
//	                       fingerprint. The path fingerprint must equal
//	                       the frame's — a mismatch is 400, never a guess.
//	POST  /v1/sketch       additionally accepts wire.MsgSketchRef: a
//	                       sketch request carrying a 32-byte fingerprint
//	                       instead of the O(nnz) matrix; the response
//	                       frame is the ordinary MsgSketchResponse.
//	                       An unknown fingerprint is StatusNotFound (404);
//	                       the client cures it with an upload and retry.
//
// The handlers require the backend to implement service.RefBackend; a
// plain Backend (no store) answers StatusBadOptions.

// refBackend resolves the by-reference surface, or fails the request.
func (s *Server) refBackend(w http.ResponseWriter, typ wire.MsgType) (service.RefBackend, bool) {
	rb, ok := s.backend.(service.RefBackend)
	if !ok {
		s.met.badRequests.Inc()
		s.writeError(w, typ, wire.StatusBadOptions,
			"backend does not serve content-addressed requests")
	}
	return rb, ok
}

// handleMatrixPut serves PUT /v1/matrix.
func (s *Server) handleMatrixPut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut {
		w.Header().Set("Allow", http.MethodPut)
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "PUT only", http.StatusMethodNotAllowed)
		return
	}
	rb, ok := s.refBackend(w, wire.MsgMatrixInfo)
	if !ok {
		return
	}
	s.met.requests.Inc()
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)

	dsp := obs.StartSpan(s.met.decode)
	a, ctx, cancel, err := s.decodeMatrixBody(sc, w, r, wire.MsgMatrixPut)
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusOf(err), err.Error())
		return
	}
	defer cancel()
	info, err := rb.PutMatrix(ctx, a)
	if err != nil {
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusOf(err), err.Error())
		return
	}
	s.writeMatrixInfo(w, sc, info)
}

// handleMatrixPatch serves PATCH /v1/matrix/{fp}.
func (s *Server) handleMatrixPatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPatch {
		w.Header().Set("Allow", http.MethodPatch)
		s.met.countCode(http.StatusMethodNotAllowed)
		http.Error(w, "PATCH only", http.StatusMethodNotAllowed)
		return
	}
	rb, ok := s.refBackend(w, wire.MsgMatrixInfo)
	if !ok {
		return
	}
	s.met.requests.Inc()
	pathFp, err := wire.ParseFingerprint(strings.TrimPrefix(r.URL.Path, "/v1/matrix/"))
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusMalformed, err.Error())
		return
	}
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)

	dsp := obs.StartSpan(s.met.decode)
	body, err := s.readBody(sc, w, r)
	var delta *wire.MatrixDelta
	if err == nil {
		var typ wire.MsgType
		var payload []byte
		typ, payload, _, err = wire.SplitFrame(body, int(s.cfg.MaxBodyBytes))
		if err == nil && typ != wire.MsgMatrixDelta {
			err = fmt.Errorf("%w: unexpected message type %v", wire.ErrMalformed, typ)
		}
		if err == nil {
			delta, err = wire.DecodeMatrixDelta(payload)
		}
	}
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusOf(err), err.Error())
		return
	}
	// The URL names the matrix being patched; the frame repeats it so a
	// proxy-rewritten path cannot silently retarget the delta.
	if delta.Fp != pathFp {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusMalformed,
			fmt.Sprintf("path fingerprint %s does not match frame fingerprint %s",
				wire.FormatFingerprint(pathFp), wire.FormatFingerprint(delta.Fp)))
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusMalformed, err.Error())
		return
	}
	defer cancel()
	xsp := obs.StartSpan(s.met.execute)
	info, err := rb.PatchMatrix(ctx, delta.Fp, delta.Delta)
	xsp.End()
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusOf(err), err.Error())
		return
	}
	s.writeMatrixInfo(w, sc, info)
}

// serveSketchRef handles one MsgSketchRef payload on /v1/sketch: sketch a
// stored matrix by fingerprint. The 121-byte request is the whole point —
// the answer is the same MsgSketchResponse the inline path produces.
func (s *Server) serveSketchRef(ctx context.Context, w http.ResponseWriter, sc *reqScratch, payload []byte, dsp obs.Span) {
	s.met.requests.Inc()
	req, err := wire.DecodeSketchRef(payload)
	dsp.End()
	if err != nil {
		s.met.badRequests.Inc()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusMalformed, err.Error())
		return
	}
	rb, ok := s.refBackend(w, wire.MsgSketchResponse)
	if !ok {
		return
	}
	var resp wire.SketchResponse
	if err := s.checkSketchSize(req.D, req.Fp.N); err != nil {
		resp = wire.SketchResponse{Status: wire.StatusBadOptions, Detail: err.Error()}
	} else {
		xsp := obs.StartSpan(s.met.execute)
		ahat, st, err := rb.SketchRef(ctx, req.Fp, req.D, req.Opts)
		xsp.End()
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			resp = wire.SketchResponse{Status: wire.StatusOf(err), Detail: err.Error()}
		} else {
			resp = wire.SketchResponse{Status: wire.StatusOK, Stats: st, Ahat: ahat}
		}
	}
	esp := obs.StartSpan(s.met.encode)
	out, err := wire.AppendFrame(sc.out[:0], wire.MsgSketchResponse, wire.AppendResponse(nil, &resp))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgSketchResponse, wire.StatusInternal, "response too large to frame: "+err.Error())
		return
	}
	sc.out = out
	s.writeFrame(w, httpStatus(resp.Status), sc.out)
	esp.End()
}

// decodeMatrixBody reads and decodes a MsgMatrixPut body plus the request
// context. (PATCH decodes inline — it threads the extra fingerprint check.)
func (s *Server) decodeMatrixBody(sc *reqScratch, w http.ResponseWriter, r *http.Request, want wire.MsgType) (*sparse.CSC, context.Context, context.CancelFunc, error) {
	body, err := s.readBody(sc, w, r)
	if err != nil {
		return nil, nil, nil, err
	}
	typ, payload, _, err := wire.SplitFrame(body, int(s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, nil, nil, err
	}
	if typ != want {
		return nil, nil, nil, fmt.Errorf("%w: unexpected message type %v", wire.ErrMalformed, typ)
	}
	a, err := wire.DecodeMatrixPut(payload)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, ctx, cancel, nil
}

// writeMatrixInfo emits the OK MsgMatrixInfo frame for info.
func (s *Server) writeMatrixInfo(w http.ResponseWriter, sc *reqScratch, info store.Info) {
	resp := wire.MatrixInfo{Status: wire.StatusOK, Fp: info.Fp, Bytes: info.Bytes, Created: info.Created}
	esp := obs.StartSpan(s.met.encode)
	out, err := wire.AppendFrame(sc.out[:0], wire.MsgMatrixInfo, wire.AppendMatrixInfo(nil, &resp))
	if err != nil {
		esp.End()
		s.writeError(w, wire.MsgMatrixInfo, wire.StatusInternal, "response too large to frame: "+err.Error())
		return
	}
	sc.out = out
	httpCode := http.StatusOK
	if info.Created {
		httpCode = http.StatusCreated
	}
	s.writeFrame(w, httpCode, sc.out)
	esp.End()
}
