// Package sketchsp is a Go implementation of "Fast multiplication of random
// dense matrices with sparse matrices" (Liang, Murray, Buluç, Demmel — IPPS
// 2024): sketching Â = S·A where A is a tall sparse matrix and S is a random
// dense matrix whose entries are regenerated on the fly inside blocked
// kernels instead of being stored, trading memory traffic for cheap,
// reproducible computation.
//
// The package exposes three layers:
//
//   - Sketching: Sketch / NewSketcher compute Â = S·A with Algorithm 3
//     (kji over CSC) or Algorithm 4 (jki over blocked CSR), sequentially or
//     in parallel, for uniform (-1,1), ±1 (Rademacher), Gaussian or
//     integer-scaled entries of S. Repeated-sketch consumers build a Plan
//     once with NewPlan and call Plan.Execute per sketch: format
//     conversion, algorithm choice and all workspaces are paid at plan
//     time, leaving executes allocation-free on a persistent worker pool.
//
//   - Least squares: SolveLeastSquares runs the paper's sketch-and-
//     precondition solver (SAP-QR / SAP-SVD) and its baselines (LSQR-D and
//     a direct sparse QR).
//
//   - Matrices: COO/CSC/CSR construction, MatrixMarket I/O, and the
//     synthetic generators used by the reproduction benchmarks.
//
// Quick start:
//
//	a := sketchsp.RandomUniform(100000, 1000, 1e-3, 42) // sparse A
//	ahat, stats, err := sketchsp.Sketch(a, 3*a.N, sketchsp.SketchOptions{
//		Dist: sketchsp.Rademacher,
//	})
package sketchsp

import (
	"context"
	"fmt"
	"time"

	"sketchsp/internal/client"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/jobs"
	"sketchsp/internal/obs"
	"sketchsp/internal/rng"
	"sketchsp/internal/service"
	"sketchsp/internal/shard"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
	"sketchsp/internal/store"
	"sketchsp/internal/wire"
)

// Typed errors. Construction surfaces (Sketch, NewPlan, NewSketcher, the
// Service request paths) report argument problems by wrapping these
// sentinels — match with errors.Is. None of them panic on bad arguments.
var (
	// ErrNilMatrix: the sparse input matrix was nil.
	ErrNilMatrix = core.ErrNilMatrix
	// ErrInvalidSketchSize: the sketch size d was not positive.
	ErrInvalidSketchSize = core.ErrInvalidSketchSize
	// ErrInvalidMatrix: the CSC input was structurally broken (e.g. the
	// zero value &CSC{}). Degenerate but valid shapes — 0×n, m×0, empty
	// columns — are not errors.
	ErrInvalidMatrix = core.ErrInvalidMatrix
	// ErrBadOptions: an Options field was out of domain.
	ErrBadOptions = core.ErrBadOptions
	// ErrPlanClosed: Execute was called on a fully released Plan.
	ErrPlanClosed = core.ErrPlanClosed
	// ErrServiceClosed: a request was issued to a closed Service.
	ErrServiceClosed = service.ErrClosed
	// ErrServiceOverloaded: the Service admission queue was full
	// (backpressure — retry later or shed the request).
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrMatrixNotFound: a by-reference request named a fingerprint the
	// server's content-addressed store does not hold (never uploaded, or
	// evicted under its byte budget). The cure is PutMatrix-then-retry —
	// Client.SketchCached does exactly that automatically.
	ErrMatrixNotFound = store.ErrNotFound
)

// Matrix types re-exported from the internal substrate. The aliases make
// the internal implementations part of the public API surface.
type (
	// Matrix is a column-major dense matrix (the type of sketches Â).
	Matrix = dense.Matrix
	// COO is a coordinate-format construction buffer for sparse matrices.
	COO = sparse.COO
	// CSC is a compressed-sparse-column matrix, the input format of the
	// sketching kernels.
	CSC = sparse.CSC
	// CSR is a compressed-sparse-row matrix.
	CSR = sparse.CSR
	// BlockedCSR is Algorithm 4's vertically blocked CSR structure.
	BlockedCSR = sparse.BlockedCSR
)

// Sketching configuration re-exports.
type (
	// SketchOptions configures a Sketcher (algorithm, distribution,
	// block sizes, seed, parallelism).
	SketchOptions = core.Options
	// SketchStats reports what a sketch invocation did.
	SketchStats = core.Stats
	// Sketcher computes Â = S·A for a fixed sketch size and options.
	Sketcher = core.Sketcher
	// Plan is a reusable sketch plan: built once by NewPlan, executed many
	// times allocation-free. Close it to release its worker pool.
	Plan = core.Plan
	// PlanStats reports the planner's decisions and one-time costs
	// (resolved algorithm, blocking, conversion time).
	PlanStats = core.PlanStats
	// Algorithm selects the compute kernel (Alg3 or Alg4).
	Algorithm = core.Algorithm
	// Scheduler selects how a Plan maps block tasks onto workers.
	Scheduler = core.Scheduler
	// Distribution selects the distribution of S's entries.
	Distribution = rng.Distribution
	// SourceKind selects the RNG engine.
	SourceKind = rng.SourceKind
)

// Compute-kernel choices (see the package comment and DESIGN.md).
const (
	// Alg3 is the kji kernel over CSC: pattern-oblivious, strided access,
	// d·nnz(A) samples. The default.
	Alg3 = core.Alg3
	// Alg4 is the jki kernel over blocked CSR: reuses generated columns
	// of S across sparse rows, fewer samples, pattern-sensitive access.
	Alg4 = core.Alg4
	// AlgAuto inspects the matrix and picks the cheaper kernel under the
	// §III-B cost model (set SketchOptions.RNGCost to this host's measured
	// h for a better-informed choice).
	AlgAuto = core.AlgAuto
)

// Task schedulers (SketchOptions.Sched). The choice never changes the
// sketch bits — only how columns group into slabs and which worker computes
// which block.
const (
	// SchedWeighted is the default: nnz-weighted slab repartition, LPT
	// prepacked per-worker queues, work stealing from the heaviest victim.
	SchedWeighted = core.SchedWeighted
	// SchedNoSteal keeps the weighted partition but disables stealing.
	SchedNoSteal = core.SchedNoSteal
	// SchedUniform is the uniform-grid shared-channel dispatch (the A/B
	// baseline for the skew benchmarks).
	SchedUniform = core.SchedUniform
)

// Distributions for the entries of S.
const (
	// Uniform11 draws iid uniform (-1, 1) entries (default).
	Uniform11 = rng.Uniform11
	// Rademacher draws iid ±1 entries (cheapest).
	Rademacher = rng.Rademacher
	// Gaussian draws iid N(0,1) entries (expensive; mostly for
	// comparison, per the paper's Figure 4).
	Gaussian = rng.Gaussian
	// ScaledInt uses the integer scaling trick: S holds raw int32 values
	// and A is pre-scaled by 2⁻³¹.
	ScaledInt = rng.ScaledInt
	// SJLT draws s-sparse Johnson–Lindenstrauss columns: exactly s
	// nonzeros per column, valued ±1/√s, regenerated per global column
	// index. Options.Sparsity selects s (0 = ⌈√d⌉); per-column work drops
	// from O(d) to O(s).
	SJLT = rng.SJLT
	// CountSketch is the s=1 member of the sparse family: one ±1 nonzero
	// per column.
	CountSketch = rng.CountSketch
)

// RNG engines.
const (
	// SourceBatchXoshiro is the 4-lane xoshiro256++ (default, fastest;
	// reproducible for a fixed blocking).
	SourceBatchXoshiro = rng.SourceBatchXoshiro
	// SourceScalarXoshiro is single-lane xoshiro256++.
	SourceScalarXoshiro = rng.SourceScalarXoshiro
	// SourcePhilox is the Philox4x32-10 counter-based RNG: slower, but
	// the sketch is identical for every blocking and thread count.
	SourcePhilox = rng.SourcePhilox
)

// NewSketcher returns a Sketcher producing d-row sketches Â = S·A.
func NewSketcher(d int, opts SketchOptions) (*Sketcher, error) {
	return core.NewSketcher(d, opts)
}

// NewPlan inspects (a, d, opts) once — resolving AlgAuto, fixing block
// sizes, converting formats, allocating per-worker state — and returns a
// reusable Plan whose Execute calls are steady-state allocation-free.
// Prefer it over Sketch whenever the same matrix is sketched more than once
// (solvers, power iterations, serving); call Plan.Close when done.
func NewPlan(a *CSC, d int, opts SketchOptions) (*Plan, error) {
	return core.NewPlan(a, d, opts)
}

// Sketch computes Â = S·A in one shot, planning and executing internally;
// d is the number of rows of S (typically γ·n for a small constant γ).
// Its Stats fold the plan's one-time costs (conversion) into this call.
func Sketch(a *CSC, d int, opts SketchOptions) (*Matrix, SketchStats, error) {
	p, err := core.NewPlan(a, d, opts)
	if err != nil {
		return nil, SketchStats{}, err
	}
	defer p.Close()
	start := time.Now()
	ahat := dense.NewMatrix(d, a.N)
	st, err := p.Execute(ahat)
	if err != nil {
		return nil, SketchStats{}, err
	}
	st.ConvertTime = p.Stats().ConvertTime
	st.Total = time.Since(start) + p.Stats().PlanTime
	return ahat, st, nil
}

// Sketch-serving re-exports. The Service is the layer to use when sketch
// requests arrive concurrently and matrices repeat: it caches Plans keyed
// by a structural fingerprint of the matrix plus the sketch options,
// builds misses under single-flight, evicts LRU with reference counting
// (never mid-Execute), and applies admission control with context-aware
// queueing. Cache hits execute allocation-free.
type (
	// Service is the concurrent sketch server (see internal/service).
	Service = service.Service
	// ServiceConfig sizes a Service (cache capacity, in-flight bound,
	// queue bound, per-request deadline).
	ServiceConfig = service.Config
	// ServiceStats is a point-in-time snapshot of service counters,
	// latency quantiles and per-cache-entry execute aggregates.
	ServiceStats = service.Stats
	// ServiceEntryStats is the per-cache-entry slice of a ServiceStats.
	ServiceEntryStats = service.EntryStats
	// SketchRequest is one request of a Service.SketchBatch call.
	SketchRequest = service.Request
	// SketchResponse is the index-aligned outcome of a batched request.
	SketchResponse = service.Response
)

// NewService returns a ready concurrent sketch server. Close it when done;
// in-flight requests finish, cached plans are released.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Network serving re-exports. cmd/sketchd serves a Service over HTTP with
// the internal/wire binary codec; Client is the matching Go client. The
// request carries the seed and distribution and the server regenerates S,
// so traffic per sketch is O(nnz(A) + d·n), never O(d·m) — the paper's
// memory-bus argument applied to the network.
type (
	// Client issues sketch requests to a sketchd server with connection
	// reuse, per-attempt timeouts and capped jittered backoff. It retries
	// only failures a retry can cure (transport errors, overload shed) and
	// surfaces errors through the same sentinels as the in-process API:
	// errors.Is(err, ErrServiceOverloaded) holds across the network.
	Client = client.Client
	// ClientConfig tunes the client's retry and timeout behaviour; the
	// zero value selects sensible defaults.
	ClientConfig = client.Config
)

// NewClient returns a client for the sketchd server at baseURL, e.g.
// "http://127.0.0.1:7464".
func NewClient(baseURL string, cfg ClientConfig) *Client { return client.New(baseURL, cfg) }

// Served-solve protocol re-exports. Build a SolveRequest (inline CSC or a
// stored matrix's fingerprint with ByRef), send it with Client.Solve —
// which transparently rides the async job surface when the server queues
// the request — or drive the job lifecycle yourself with Client.SolveAsync,
// Client.JobStatus, Client.JobWait and Client.CancelJob.
type (
	// SolveRequest is the POST /v1/solve request body: method, solver
	// knobs, sketch options, the right-hand side, and the matrix (inline
	// or by fingerprint reference).
	SolveRequest = wire.SolveRequest
	// SolveResponse carries the solution (or RandSVD factors) plus the
	// server-side timing/iteration breakdown.
	SolveResponse = wire.SolveResponse
	// SolveJobStatus reports one async solve job: its lifecycle state,
	// live iteration progress, and — once terminal — the embedded result.
	SolveJobStatus = wire.JobStatus
	// SolveMethod selects the algorithm on the wire (it maps onto Method;
	// Direct has no wire form).
	SolveMethod = wire.SolveMethod
	// JobState is an async solve job's lifecycle state.
	JobState = jobs.State
)

// Wire solve methods.
const (
	WireSAPQR   = wire.SolveSAPQR
	WireSAPSVD  = wire.SolveSAPSVD
	WireMinNorm = wire.SolveMinNorm
	WireLSQRD   = wire.SolveLSQRD
	WireRandSVD = wire.SolveRandSVD
)

// Async solve job lifecycle states.
const (
	JobPending   = jobs.StatePending
	JobRunning   = jobs.StateRunning
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
	JobCancelled = jobs.StateCancelled
)

// ErrJobNotFound: a job ID named an unknown, expired or evicted job.
var ErrJobNotFound = jobs.ErrNotFound

// Content-addressed serving re-exports. Matrices repeat in serving
// workloads, so the upload can be split from the request: PutMatrix stores
// A under its structural fingerprint once, and every later sketch names
// the 32-byte fingerprint instead of shipping O(nnz) bytes
// (Client.SketchCached folds the two together, uploading only when the
// server does not hold the content). PatchMatrix applies a sparse ΔA,
// making A+ΔA addressable under its own fingerprint while the server
// advances cached sketches incrementally as Â + S·ΔA — bit-identical to a
// from-scratch sketch in the integer-exact value regime. Both *Service
// and *ShardCoordinator implement RefBackend; Client exposes the matching
// calls over the wire.
type (
	// Fingerprint is the content address of a sparse matrix: shape, nnz
	// and a structural hash. CSC.Fingerprint computes it.
	Fingerprint = sparse.Fingerprint
	// MatrixInfo is a store receipt: the fingerprint, resident bytes, and
	// whether the operation inserted new content.
	MatrixInfo = store.Info
	// RefBackend is the content-addressed extension of Backend (PutMatrix,
	// SketchRef, PatchMatrix).
	RefBackend = service.RefBackend
)

// AddSparse returns A+ΔA as a fresh CSC (inputs untouched), merging
// coincident entries and dropping exact-zero sums so the result is in the
// canonical form content addressing requires.
func AddSparse(a, delta *CSC) (*CSC, error) { return sparse.Add(a, delta) }

// Sharded serving re-exports. A ShardCoordinator splits each request into
// nnz-balanced column shards, routes every shard to a worker by consistent
// hashing on the shard's structural fingerprint (repeat matrices keep
// hitting the same workers' plan caches), executes the shards on the
// workers in parallel, and reassembles the partial sketches. Because S[i,j]
// depends only on (seed, blocking, i, global column j), the merged sketch
// is bit-identical to a single-process run — sharding is invisible to
// callers. cmd/sketchd exposes the same layer as a daemon via -peers.
type (
	// Backend is the shard-agnostic serving interface: both a *Service
	// (local execution) and a *ShardCoordinator (fan-out over workers)
	// implement it, so servers and callers need not know which they hold.
	Backend = service.Backend
	// ShardCoordinator fans sketch requests out over sketchd workers and
	// merges the exact partial sketches.
	ShardCoordinator = shard.Coordinator
	// ShardConfig configures a ShardCoordinator (peers, shards per
	// request, failover cooldown, client tuning).
	ShardConfig = shard.Config
	// ShardError reports which column range on which peer failed, and
	// wraps the underlying cause for errors.Is/As.
	ShardError = shard.ShardError
	// PeerAdmin is the dynamic-membership surface: a Backend that also
	// implements it (the ShardCoordinator does) gets POST/DELETE
	// /v1/peers mounted by the server, and AddPeer/RemovePeer/Peers can
	// be called directly from Go. Membership changes re-canonicalise the
	// routing ring without dropping in-flight requests.
	PeerAdmin = service.PeerAdmin
)

// ErrNoShardPeers: a ShardCoordinator was configured with no usable peers.
var ErrNoShardPeers = shard.ErrNoPeers

// ErrUnknownPeer: a RemovePeer named a peer that is not in the membership.
var ErrUnknownPeer = service.ErrUnknownPeer

// NewShardCoordinator returns a coordinator fanning out over cfg.Peers.
// Close it when done; it owns one Client per peer.
func NewShardCoordinator(cfg ShardConfig) (*ShardCoordinator, error) { return shard.New(cfg) }

// MetricsRegistry is the dependency-free metrics registry behind every
// layer's counters and histograms (see internal/obs). A Service creates a
// private one unless ServiceConfig.Metrics hands it a shared registry;
// MetricsRegistry.Handler serves the Prometheus text exposition — the same
// endpoint sketchd mounts at /metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry, for callers that want one
// registry spanning several layers (a Service plus a client, say) or their
// own application metrics beside the sketchsp_* families.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Least-squares solver re-exports.
type (
	// SolveOptions configures SolveLeastSquares.
	SolveOptions = solver.Options
	// SolveInfo reports timing, iterations and workspace of a solve.
	SolveInfo = solver.Info
	// Method selects the least-squares algorithm.
	Method = solver.Method
)

// Least-squares methods.
const (
	// SAPQR is sketch-and-precondition with a QR-based preconditioner.
	SAPQR = solver.MethodSAPQR
	// SAPSVD is sketch-and-precondition with an SVD-based preconditioner
	// (for problems with singular values near zero).
	SAPSVD = solver.MethodSAPSVD
	// LSQRD is LSQR with a diagonal column-equilibration preconditioner.
	LSQRD = solver.MethodLSQRD
	// Direct is the sparse-QR direct solver.
	Direct = solver.MethodDirect
	// MinNorm is the minimum-norm solver for underdetermined systems
	// (SolveMinNorm's method, for the served-solve request surface).
	MinNorm = solver.MethodMinNorm
	// RandSVDMethod names the randomized SVD on the served-solve request
	// surface; SolveLeastSquares rejects it (RandSVD returns factors, not a
	// least-squares solution — call RandSVD or serve it via Client.Solve).
	RandSVDMethod = solver.MethodRandSVD
)

// SolveLeastSquares solves min ‖A·x − b‖₂ with the chosen method.
func SolveLeastSquares(method Method, a *CSC, b []float64, opts SolveOptions) ([]float64, SolveInfo, error) {
	return solver.Solve(method, a, b, opts)
}

// SolveMinNorm solves the underdetermined problem min ‖x‖₂ subject to
// A·x = b for a wide, full-row-rank A, by sketching Aᵀ and running LSQR on
// the left-preconditioned consistent system (the paper's footnote-2
// extension).
func SolveMinNorm(a *CSC, b []float64, opts SolveOptions) ([]float64, SolveInfo, error) {
	return solver.SolveMinNorm(a, b, opts)
}

// SolveLeastSquaresContext is SolveLeastSquares with cancellation: ctx is
// observed between LSQR iterations (and by the sketching engine), and
// SolveOptions.Progress receives per-iteration residual estimates.
func SolveLeastSquaresContext(ctx context.Context, method Method, a *CSC, b []float64, opts SolveOptions) ([]float64, SolveInfo, error) {
	return solver.SolveContext(ctx, method, a, b, opts)
}

// SolveMinNormContext is SolveMinNorm with cancellation.
func SolveMinNormContext(ctx context.Context, a *CSC, b []float64, opts SolveOptions) ([]float64, SolveInfo, error) {
	return solver.SolveMinNormContext(ctx, a, b, opts)
}

// RSVDResult is a rank-k approximation A ≈ U·diag(Sigma)·Vᵀ from RandSVD.
type RSVDResult = solver.RSVDResult

// RandSVD computes a rank-k randomized SVD of a sparse matrix with the
// on-the-fly sketching engine as the range finder (the n×(k+p) random test
// matrix is never materialised). powerIters adds subspace iterations for
// slowly decaying spectra; oversample ≤ 0 selects 8.
func RandSVD(a *CSC, rank, oversample, powerIters int, opts SketchOptions) (*RSVDResult, error) {
	return solver.RandSVD(a, rank, oversample, powerIters, opts)
}

// LeverageScores estimates the row leverage scores of a tall sparse matrix
// by sketch-whitening plus a Johnson–Lindenstrauss compression — the
// pylspack-style statistic built on the same primitive. kJL ≤ 0 selects 64.
func LeverageScores(a *CSC, kJL int, opts SolveOptions) ([]float64, error) {
	return solver.LeverageScores(a, kJL, opts)
}

// LeastSquaresError is the paper's backward-error metric
// ‖Aᵀ(Ax − b)‖₂ / (‖A‖_F·‖Ax − b‖₂) for a candidate solution.
func LeastSquaresError(a *CSC, x, b []float64) float64 {
	return solver.ErrorMetric(a, x, b)
}

// Sparse-matrix constructors and I/O re-exports.

// NewCOO creates an empty m×n coordinate-format buffer.
func NewCOO(m, n, nnzHint int) *COO { return sparse.NewCOO(m, n, nnzHint) }

// NewCSC builds a CSC matrix from raw compressed arrays, validating the
// structural invariants.
func NewCSC(m, n int, colPtr, rowIdx []int, val []float64) (*CSC, error) {
	return sparse.NewCSC(m, n, colPtr, rowIdx, val)
}

// NewDense allocates a zeroed r×c column-major dense matrix.
func NewDense(r, c int) *Matrix { return dense.NewMatrix(r, c) }

// RandomUniform generates a sparse matrix with iid-uniform pattern at the
// given density, values uniform in (-1, 1).
func RandomUniform(m, n int, density float64, seed int64) *CSC {
	return sparse.RandomUniform(m, n, density, seed)
}

// PowerLaw generates a sparse matrix whose column degrees follow a Zipf
// power law with exponent alpha (column j receives ∝ (j+1)^−alpha of the
// nnz budget), values uniform in (-1, 1) — the skewed workload for the
// scheduler benchmarks. alpha = 0 degenerates to uniform column degrees.
func PowerLaw(m, n, nnz int, alpha float64, seed int64) *CSC {
	return sparse.PowerLaw(m, n, nnz, alpha, seed)
}

// ReadMatrixMarketFile parses a MatrixMarket coordinate file.
func ReadMatrixMarketFile(path string) (*CSC, error) {
	return sparse.ReadMatrixMarketFile(path)
}

// WriteMatrixMarketFile writes a CSC matrix in coordinate format.
func WriteMatrixMarketFile(path string, a *CSC) error {
	return sparse.WriteMatrixMarketFile(path, a)
}

// EffectiveDistortion estimates the sketching distortion of S for range(A):
// it sketches with the given options, whitens the sketch against a QR
// factorization of A, and returns (σmax−σmin)/(σmax+σmin) of the whitened
// operator — the smallest D with σ(S·Q) ⊆ c·[1−D, 1+D] under the optimal
// rescaling c.
// For a γ·n sketch of Gaussian type this converges to 1/√γ (§V); it is the
// quality measure used to check that cheap distributions still give usable
// sketches.
func EffectiveDistortion(a *CSC, d int, opts SketchOptions) (float64, error) {
	if d <= a.N {
		return 0, fmt.Errorf("sketchsp: distortion needs d > n (got d=%d, n=%d)", d, a.N)
	}
	return solver.Distortion(a, d, opts)
}
