// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §3) plus the ablation benches of DESIGN.md §4. These run on
// deliberately small instances so `go test -bench=.` finishes quickly; the
// full-size regenerations live in cmd/spmmbench and cmd/lsqbench.
package sketchsp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sketchsp/internal/analysis"
	"sketchsp/internal/baseline"
	"sketchsp/internal/bench"
	"sketchsp/internal/core"
	"sketchsp/internal/dense"
	"sketchsp/internal/kernels"
	"sketchsp/internal/rng"
	"sketchsp/internal/solver"
	"sketchsp/internal/sparse"
	"sketchsp/internal/sparseqr"
)

// benchMatrix is an mk-12-scale workload reused across SpMM benches.
func benchMatrix(b *testing.B) (*sparse.CSC, int) {
	b.Helper()
	a := sparse.RandomUniform(6000, 600, 4e-3, 1)
	return a, 3 * a.N
}

func newSketcher(b *testing.B, d int, opts core.Options) *core.Sketcher {
	b.Helper()
	sk, err := core.NewSketcher(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func sketchFlops(d int, a *sparse.CSC) int64 { return 2 * int64(d) * int64(a.NNZ()) }

// BenchmarkTable1Properties measures workload generation (the Table I
// stand-ins at a small scale).
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := bench.SpMMWorkloads(0.01, int64(i))
		if len(ws) != 5 {
			b.Fatal("bad workload count")
		}
	}
}

// BenchmarkTable2 races Algorithm 3 against the pre-generated baselines.
func BenchmarkTable2(b *testing.B) {
	a, d := benchMatrix(b)
	sk := newSketcher(b, d, core.Options{Seed: 1, Workers: 1})
	s := sk.MaterializeS(a.M)
	at := a.Transpose().ToCSR()
	out := dense.NewMatrix(d, a.N)
	flops := sketchFlops(d, a)

	b.Run("MKLStyle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.MKLStyle(s, at, out)
		}
		b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GF/s")
	})
	b.Run("EigenStyle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.EigenStyle(s, a, out)
		}
		b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GF/s")
	})
	b.Run("JuliaStyle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.JuliaStyle(s, a, out)
		}
		b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GF/s")
	})
	for _, dc := range []struct {
		name string
		dist rng.Distribution
	}{{"Alg3Uniform", rng.Uniform11}, {"Alg3Scaled", rng.ScaledInt}, {"Alg3PM1", rng.Rademacher}} {
		dc := dc
		b.Run(dc.name, func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{Dist: dc.dist, Seed: 1, Workers: 1})
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
			b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GF/s")
		})
	}
}

// BenchmarkTable3SampleBreakdown times the instrumented kernels
// (Frontera-config blocking b_n = 500).
func BenchmarkTable3SampleBreakdown(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, alg := range []core.Algorithm{core.Alg3, core.Alg4} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{
				Algorithm: alg, Seed: 1, Workers: 1, Timed: true, BlockN: 500,
			})
			var sample, total float64
			for i := 0; i < b.N; i++ {
				st := sk.SketchInto(out, a)
				sample += st.SampleTime.Seconds()
				total += st.Total.Seconds()
			}
			if total > 0 {
				b.ReportMetric(sample/total, "sample-frac")
			}
		})
	}
}

// BenchmarkTable4Alg4 covers the Perlmutter-config comparison: Algorithm 4
// compute plus the separately-timed blocked-CSR conversion.
func BenchmarkTable4Alg4(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, dc := range []struct {
		name string
		dist rng.Distribution
	}{{"Uniform", rng.Uniform11}, {"PM1", rng.Rademacher}} {
		dc := dc
		b.Run(dc.name, func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{
				Algorithm: core.Alg4, Dist: dc.dist, Seed: 1, Workers: 1, BlockN: 300,
			})
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
		})
	}
	b.Run("Conversion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.NewBlockedCSR(a, 300)
		}
	})
}

// BenchmarkTable5SampleBreakdown is Table III's twin with the wide-slab
// (Perlmutter) blocking.
func BenchmarkTable5SampleBreakdown(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, alg := range []core.Algorithm{core.Alg3, core.Alg4} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{
				Algorithm: alg, Seed: 1, Workers: 1, Timed: true, BlockN: 1200,
			})
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
		})
	}
}

// BenchmarkTable6Abnormal races the kernels on the exotic patterns.
func BenchmarkTable6Abnormal(b *testing.B) {
	ws := bench.AbnormalWorkloads(0.04, 1)
	for _, w := range ws {
		for _, alg := range []core.Algorithm{core.Alg3, core.Alg4} {
			w, alg := w, alg
			b.Run(fmt.Sprintf("%s/%s", w.Name, alg), func(b *testing.B) {
				sk := newSketcher(b, w.D, core.Options{Algorithm: alg, Seed: 1, Workers: 1})
				out := dense.NewMatrix(w.D, w.A.N)
				for i := 0; i < b.N; i++ {
					sk.SketchInto(out, w.A)
				}
			})
		}
	}
}

// BenchmarkTable7Parallel sweeps worker counts (meaningful only on
// multi-core hosts; see EXPERIMENTS.md).
func BenchmarkTable7Parallel(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, alg := range []core.Algorithm{core.Alg3, core.Alg4} {
			workers, alg := workers, alg
			b.Run(fmt.Sprintf("%s/workers=%d", alg, workers), func(b *testing.B) {
				sk := newSketcher(b, d, core.Options{
					Algorithm: alg, Seed: 1, Workers: workers, BlockD: 256, BlockN: 64,
				})
				for i := 0; i < b.N; i++ {
					sk.SketchInto(out, a)
				}
			})
		}
	}
}

// BenchmarkFig4Distributions is the Figure 4 series at one density.
func BenchmarkFig4Distributions(b *testing.B) {
	a := sparse.RandomUniform(4000, 400, 1e-3, 2)
	d := 3 * a.N
	out := dense.NewMatrix(d, a.N)
	for _, dc := range []struct {
		name string
		dist rng.Distribution
	}{
		{"GaussianFly", rng.Gaussian},
		{"UniformFly", rng.Uniform11},
		{"ScalingTrick", rng.ScaledInt},
		{"PM1Fly", rng.Rademacher},
		{"JunkUpperBound", rng.Junk},
	} {
		dc := dc
		b.Run(dc.name, func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{
				Algorithm: core.Alg4, Dist: dc.dist, Seed: 1, Workers: 1,
			})
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
		})
	}
	b.Run("PregenMem", func(b *testing.B) {
		sk := newSketcher(b, d, core.Options{Seed: 1, Workers: 1})
		s := sk.MaterializeS(a.M)
		for i := 0; i < b.N; i++ {
			baseline.EigenStyle(s, a, out)
		}
	})
}

// lsBenchProblem is a small rail-like LS instance.
func lsBenchProblem(b *testing.B) (*sparse.CSC, []float64) {
	b.Helper()
	a := sparse.RowIntervals(8000, 80, 8, 3)
	rhs := bench.PaperRHS(a, 4)
	return a, rhs
}

// BenchmarkTable9Solvers times the three least-squares solvers.
func BenchmarkTable9Solvers(b *testing.B) {
	a, rhs := lsBenchProblem(b)
	opts := solver.Options{Sketch: core.Options{Seed: 1, Workers: 1}}
	b.Run("SAPQR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveSAPQR(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SAPSVD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveSAPSVD(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LSQRD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveLSQRD(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveDirect(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable10ErrorMetric times the backward-error evaluation itself.
func BenchmarkTable10ErrorMetric(b *testing.B) {
	a, rhs := lsBenchProblem(b)
	x, _, err := solver.SolveSAPQR(a, rhs, solver.Options{Sketch: core.Options{Seed: 1, Workers: 1}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		solver.ErrorMetric(a, x, rhs)
	}
}

// BenchmarkTable11DirectFactor measures the direct factorization whose
// memory footprint Table XI reports (memory via -benchmem allocations).
func BenchmarkTable11DirectFactor(b *testing.B) {
	a, rhs := lsBenchProblem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparseqr.Factorize(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SpeedupInputs measures the two ratio numerators of Fig 6.
func BenchmarkFig6SpeedupInputs(b *testing.B) {
	BenchmarkTable9Solvers(b)
}

// ---- ablation benches (DESIGN.md §4) ----

// BenchmarkAblationLoopOrder races the six Algorithm-2 orderings.
func BenchmarkAblationLoopOrder(b *testing.B) {
	a := sparse.RandomUniform(800, 200, 0.02, 3)
	csr := a.ToCSR()
	d := 256
	sk := newSketcher(b, d, core.Options{Seed: 1, Workers: 1})
	l := sk.MaterializeS(a.M)
	g := dense.NewMatrix(d, a.N)
	for _, order := range kernels.AllLoopOrders() {
		order := order
		b.Run(order.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Zero()
				kernels.MultiplyLoopOrder(order, l, a, csr, g)
			}
		})
	}
}

// BenchmarkAblationPregen contrasts on-the-fly generation against reading a
// materialised S through the same kernel structure.
func BenchmarkAblationPregen(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	sk := newSketcher(b, d, core.Options{Seed: 1, Workers: 1})
	b.Run("OnTheFly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sk.SketchInto(out, a)
		}
	})
	b.Run("Pregen", func(b *testing.B) {
		s := sk.MaterializeS(a.M)
		blocked := sparse.NewBlockedCSR(a, 300)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out.Zero()
			col := 0
			for k, slab := range blocked.Blocks {
				sub := out.View(0, blocked.ColStart[k], d, slab.N)
				kernels.Kernel4Pregen(sub, slab, s)
				col += slab.N
			}
		}
	})
}

// BenchmarkAblationRNGLanes measures the 4-lane batching win over the
// scalar xoshiro stream.
func BenchmarkAblationRNGLanes(b *testing.B) {
	buf := make([]float64, 3000)
	b.Run("Batch4", func(b *testing.B) {
		s := rng.NewSampler(rng.NewBatchXoshiro(1), rng.Uniform11)
		b.SetBytes(int64(len(buf)) * 8)
		for i := 0; i < b.N; i++ {
			s.SetState(0, uint64(i))
			s.Fill(buf)
		}
	})
	b.Run("Scalar", func(b *testing.B) {
		s := rng.NewSampler(rng.NewScalarXoshiroSource(1), rng.Uniform11)
		b.SetBytes(int64(len(buf)) * 8)
		for i := 0; i < b.N; i++ {
			s.SetState(0, uint64(i))
			s.Fill(buf)
		}
	})
}

// BenchmarkAblationCBRNG contrasts xoshiro checkpointing against the
// counter-based Philox (the ~5x factor of §IV-B).
func BenchmarkAblationCBRNG(b *testing.B) {
	buf := make([]float64, 3000)
	for _, sc := range []struct {
		name string
		kind rng.SourceKind
	}{{"XoshiroBatch", rng.SourceBatchXoshiro}, {"Philox", rng.SourcePhilox}} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			s := rng.NewSampler(rng.NewSource(sc.kind, 1), rng.Uniform11)
			b.SetBytes(int64(len(buf)) * 8)
			for i := 0; i < b.N; i++ {
				s.SetState(0, uint64(i))
				s.Fill(buf)
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps (b_d, b_n) around the defaults.
func BenchmarkAblationBlockSize(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, bd := range []int{128, 512, 1800} {
		for _, bn := range []int{50, 200, 600} {
			bd, bn := bd, bn
			b.Run(fmt.Sprintf("bd=%d/bn=%d", bd, bn), func(b *testing.B) {
				sk := newSketcher(b, d, core.Options{Seed: 1, Workers: 1, BlockD: bd, BlockN: bn})
				for i := 0; i < b.N; i++ {
					sk.SketchInto(out, a)
				}
			})
		}
	}
}

// BenchmarkAblationScaling isolates the scaling trick against plain
// uniform generation.
func BenchmarkAblationScaling(b *testing.B) {
	a, d := benchMatrix(b)
	out := dense.NewMatrix(d, a.N)
	for _, dc := range []struct {
		name string
		dist rng.Distribution
	}{{"Uniform64", rng.Uniform11}, {"ScaledInt32", rng.ScaledInt}} {
		dc := dc
		b.Run(dc.name, func(b *testing.B) {
			sk := newSketcher(b, d, core.Options{Dist: dc.dist, Seed: 1, Workers: 1})
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
		})
	}
}

// BenchmarkCacheSimTraffic measures the simulator itself (used by
// analysisbench -cachesim).
func BenchmarkCacheSimTraffic(b *testing.B) {
	a := sparse.RandomUniform(500, 100, 0.02, 1)
	for i := 0; i < b.N; i++ {
		analysis.TraceAlg3(a, 300, 64, 16, analysis.NewCache(1<<10))
	}
}

// BenchmarkAblationParallelRNG measures §II-C's claim that multithreading
// the per-call random number generation (line 8 of Algorithm 3) is
// ineffective: the synchronisation overhead of splitting one d₁-length fill
// across goroutines exceeds the work itself at realistic block heights.
func BenchmarkAblationParallelRNG(b *testing.B) {
	const d1 = 3000
	buf := make([]float64, d1)
	b.Run("Sequential", func(b *testing.B) {
		s := rng.NewSampler(rng.NewBatchXoshiro(1), rng.Uniform11)
		b.SetBytes(d1 * 8)
		for i := 0; i < b.N; i++ {
			s.SetState(0, uint64(i))
			s.Fill(buf)
		}
	})
	for _, workers := range []int{2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("Goroutines%d", workers), func(b *testing.B) {
			samplers := make([]*rng.Sampler, workers)
			for w := range samplers {
				samplers[w] = rng.NewSampler(rng.NewBatchXoshiro(uint64(w+1)), rng.Uniform11)
			}
			b.SetBytes(d1 * 8)
			var wg sync.WaitGroup
			for i := 0; i < b.N; i++ {
				chunk := (d1 + workers - 1) / workers
				for w := 0; w < workers; w++ {
					lo := w * chunk
					hi := lo + chunk
					if hi > d1 {
						hi = d1
					}
					wg.Add(1)
					go func(w, lo, hi int) {
						defer wg.Done()
						samplers[w].SetState(uint64(w), uint64(i))
						samplers[w].Fill(buf[lo:hi])
					}(w, lo, hi)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkApplications measures the two §I application pipelines built on
// the sketching engine.
func BenchmarkApplications(b *testing.B) {
	a := sparse.RandomUniform(5000, 300, 5e-3, 7)
	b.Run("RandSVD-rank10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.RandSVD(a, 10, 8, 1, core.Options{Seed: 1, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LeverageScores", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.LeverageScores(a, 64, solver.Options{Sketch: core.Options{Seed: 1, Workers: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinNorm", func(b *testing.B) {
		wide := a.Transpose()
		rhs := make([]float64, wide.M)
		for i := range rhs {
			rhs[i] = float64(i%7) - 3
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SolveMinNorm(wide, rhs, solver.Options{Sketch: core.Options{Seed: 1, Workers: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanReuse demonstrates the planner/executor win: steady-state
// Plan.Execute is allocation-free (0 allocs/op) and never re-pays the
// CSC→BlockedCSR conversion, while the per-call Sketch path replans — and
// reconverts, for Algorithm 4 — on every invocation.
func BenchmarkPlanReuse(b *testing.B) {
	a, d := benchMatrix(b)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Alg3/seq", core.Options{Algorithm: core.Alg3, Seed: 1, Workers: 1}},
		{"Alg4/seq", core.Options{Algorithm: core.Alg4, Seed: 1, Workers: 1}},
		{"Alg4/workers4", core.Options{Algorithm: core.Alg4, Seed: 1, Workers: 4, BlockD: 450, BlockN: 150}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run("Execute/"+cfg.name, func(b *testing.B) {
			p, err := core.NewPlan(a, d, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			out := dense.NewMatrix(d, a.N)
			if _, err := p.Execute(out); err != nil { // warm the worker pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("SketchPerCall/"+cfg.name, func(b *testing.B) {
			sk := newSketcher(b, d, cfg.opts)
			out := dense.NewMatrix(d, a.N)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk.SketchInto(out, a)
			}
		})
	}
}

// BenchmarkServiceHit mirrors BenchmarkPlanReuse one layer up: the whole
// service request path on a cache hit — admission gate, O(nnz) fingerprint,
// cache lookup, refcount, allocation-free Execute, metrics — versus the
// bare plan execute it wraps. The hit path must stay at 0 allocs/op
// (TestServiceHitZeroAlloc in internal/service enforces it; the -benchmem
// column here shows it). Wired into `make bench-json`, with serve-mode
// results recorded in BENCH_PR3.json.
func BenchmarkServiceHit(b *testing.B) {
	a, d := benchMatrix(b)
	configs := []struct {
		name string
		opts SketchOptions
	}{
		{"Alg3/seq", SketchOptions{Algorithm: Alg3, Seed: 1, Workers: 1}},
		{"Alg4/workers4", SketchOptions{Algorithm: Alg4, Seed: 1, Workers: 4, BlockD: 450, BlockN: 150}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			svc := NewService(ServiceConfig{Capacity: 4, MaxInFlight: 2})
			defer svc.Close()
			out := NewDense(d, a.N)
			ctx := context.Background()
			if _, err := svc.SketchInto(ctx, out, a, d, cfg.opts); err != nil {
				b.Fatal(err) // miss: build the plan, warm the pool
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.SketchInto(ctx, out, a, d, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkewedExecute is the PR-2 acceptance benchmark: on skewed inputs
// the nnz-aware weighted work-stealing scheduler must beat the uniform
// shared-channel dispatch. The AbnormalB instance is sized so that at
// bn = 500 the uniform grid puts ~all mass in ONE slab (n = 1500, middle
// third = exactly one slab): uniform dispatch then degenerates to one busy
// worker, while the weighted partition splits that slab into ~worker-count
// pieces. NOTE: the speedup only manifests on multi-core hosts; on a
// single-core machine the two schedulers are compute-bound identical (see
// EXPERIMENTS.md on parallel measurements).
func BenchmarkSkewedExecute(b *testing.B) {
	inputs := []struct {
		name string
		a    *sparse.CSC
	}{
		{"AbnormalB", sparse.AbnormalB(20000, 1500, 300000, 2998.0/3000.0, 1)},
		{"PowerLaw", sparse.PowerLaw(20000, 1500, 300000, 1.6, 1)},
	}
	const d = 900
	for _, in := range inputs {
		for _, sc := range []struct {
			name  string
			sched core.Scheduler
		}{
			{"uniform", core.SchedUniform},
			{"nosteal", core.SchedNoSteal},
			{"weighted", core.SchedWeighted},
		} {
			in, sc := in, sc
			b.Run(fmt.Sprintf("%s/%s", in.name, sc.name), func(b *testing.B) {
				p, err := core.NewPlan(in.a, d, core.Options{
					Algorithm: core.Alg3, Seed: 1, Workers: 8,
					BlockD: d, BlockN: 500, Sched: sc.sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				out := dense.NewMatrix(d, in.a.N)
				if _, err := p.Execute(out); err != nil { // warm the pool
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var last core.Stats
				for i := 0; i < b.N; i++ {
					st, err := p.Execute(out)
					if err != nil {
						b.Fatal(err)
					}
					last = st
				}
				b.ReportMetric(float64(sketchFlops(d, in.a)*int64(b.N))/b.Elapsed().Seconds()/1e9, "GF/s")
				if last.Imbalance > 0 {
					b.ReportMetric(last.Imbalance, "imbalance")
				}
			})
		}
	}
}
